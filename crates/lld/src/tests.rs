//! Integration-style tests of the full LLD stack over the disk simulator.

use ld_core::{FailureSet, LdError, ListHints, LogicalDisk, Pred, PredList};
use simdisk::SimDisk;

use crate::{CleaningPolicy, Lld, LldConfig};

fn small_lld() -> Lld<SimDisk> {
    let disk = SimDisk::hp_c3010_with_capacity(8 << 20);
    Lld::format(disk, LldConfig::small_for_tests()).unwrap()
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31) ^ seed)
        .collect()
}

/// Crash: drop all in-memory state, revive the device, re-open.
fn crash_and_reopen(lld: Lld<SimDisk>) -> Lld<SimDisk> {
    let config = lld.config().clone();
    let mut disk = lld.into_disk();
    disk.crash_now();
    disk.revive();
    Lld::open(disk, config).unwrap()
}

#[test]
fn write_read_roundtrip_in_memory_and_on_disk() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let bid = lld.new_block(lid, Pred::Start).unwrap();
    let data = pattern(4096, 1);
    lld.write(bid, &data).unwrap();

    // Served from the open segment.
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(bid, &mut buf).unwrap(), 4096);
    assert_eq!(buf, data);
    assert_eq!(lld.stats().block_reads_from_memory, 1);

    // Force it to disk and read again.
    lld.seal().unwrap();
    let mut buf2 = vec![0u8; 4096];
    assert_eq!(lld.read(bid, &mut buf2).unwrap(), 4096);
    assert_eq!(buf2, data);
    assert_eq!(lld.stats().block_reads_from_memory, 1);
}

#[test]
fn unwritten_block_reads_empty() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let bid = lld.new_block(lid, Pred::Start).unwrap();
    let mut buf = vec![0u8; 16];
    assert_eq!(lld.read(bid, &mut buf).unwrap(), 0);
    assert_eq!(lld.block_len(bid).unwrap(), 0);
}

#[test]
fn list_order_is_preserved_across_operations() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    let b = lld.new_block(lid, Pred::After(a)).unwrap();
    let c = lld.new_block(lid, Pred::After(b)).unwrap();
    let x = lld.new_block(lid, Pred::After(a)).unwrap();
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a, x, b, c]);
    lld.delete_block(x, lid, Some(a)).unwrap();
    lld.delete_block(a, lid, None).unwrap();
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![b, c]);
}

#[test]
fn wrong_delete_hint_still_works() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    let b = lld.new_block(lid, Pred::After(a)).unwrap();
    let c = lld.new_block(lid, Pred::After(b)).unwrap();
    // Hint `c` is wrong for deleting `b` (true pred is `a`).
    lld.delete_block(b, lid, Some(c)).unwrap();
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a, c]);
}

#[test]
fn blocks_spanning_many_segments_survive() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let mut bids = Vec::new();
    let mut pred = Pred::Start;
    // 64 KB segments with 4 KB summary → 60 KB data; write 100 blocks of
    // 4 KB = several segments.
    for i in 0..100u8 {
        let bid = lld.new_block(lid, pred).unwrap();
        lld.write(bid, &pattern(4096, i)).unwrap();
        bids.push(bid);
        pred = Pred::After(bid);
    }
    assert!(lld.stats().segments_sealed >= 5);
    for (i, bid) in bids.iter().enumerate() {
        let mut buf = vec![0u8; 4096];
        lld.read(*bid, &mut buf).unwrap();
        assert_eq!(buf, pattern(4096, i as u8), "block {i}");
    }
}

#[test]
fn flush_below_threshold_writes_partial_segment() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let bid = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(bid, &pattern(4096, 9)).unwrap();
    lld.flush(FailureSet::PowerFailure).unwrap();
    assert_eq!(lld.stats().partial_segment_writes, 1);
    assert_eq!(lld.stats().segments_sealed, 0);

    // A second flush with no new work is free.
    let writes_before = lld.disk().stats().write_ops;
    lld.flush(FailureSet::PowerFailure).unwrap();
    assert_eq!(lld.disk().stats().write_ops, writes_before);

    // The partially-flushed block is still served from memory and the
    // scratch is recycled at seal with no cleaning.
    lld.seal().unwrap();
    assert_eq!(lld.stats().segments_cleaned, 0);
    let mut buf = vec![0u8; 4096];
    lld.read(bid, &mut buf).unwrap();
    assert_eq!(buf, pattern(4096, 9));
}

#[test]
fn flush_above_threshold_seals() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    // Data region is 60 KB; 75% threshold = 45 KB; write 12 × 4 KB = 48 KB.
    let mut pred = Pred::Start;
    for i in 0..12u8 {
        let bid = lld.new_block(lid, pred).unwrap();
        lld.write(bid, &pattern(4096, i)).unwrap();
        pred = Pred::After(bid);
    }
    lld.flush(FailureSet::PowerFailure).unwrap();
    assert_eq!(lld.stats().flush_seals, 1);
    assert_eq!(lld.stats().partial_segment_writes, 0);
}

#[test]
fn crash_recovery_restores_flushed_state() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    let b = lld.new_block(lid, Pred::After(a)).unwrap();
    lld.write(a, &pattern(4096, 1)).unwrap();
    lld.write(b, &pattern(2000, 2)).unwrap();
    lld.flush(FailureSet::PowerFailure).unwrap();

    let mut lld = crash_and_reopen(lld);
    assert!(!lld.stats().recovered_from_checkpoint);
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a, b]);
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(a, &mut buf).unwrap(), 4096);
    assert_eq!(buf, pattern(4096, 1));
    assert_eq!(lld.read(b, &mut buf[..2000]).unwrap(), 2000);
    assert_eq!(&buf[..2000], &pattern(2000, 2)[..]);
}

#[test]
fn unflushed_tail_is_lost_on_crash() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(a, &pattern(4096, 1)).unwrap();
    lld.flush(FailureSet::PowerFailure).unwrap();
    // Unflushed: a second block and an overwrite of `a`.
    let b = lld.new_block(lid, Pred::After(a)).unwrap();
    lld.write(b, &pattern(4096, 2)).unwrap();
    lld.write(a, &pattern(4096, 3)).unwrap();

    let mut lld = crash_and_reopen(lld);
    // Only the flushed prefix survives ("recovery up to the last segment
    // successfully written", §5.2).
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a]);
    let mut buf = vec![0u8; 4096];
    lld.read(a, &mut buf).unwrap();
    assert_eq!(buf, pattern(4096, 1));
    assert_eq!(
        lld.read(b, &mut buf),
        Err(LdError::UnknownBlock(b)),
        "unflushed block must not survive"
    );
}

#[test]
fn aru_is_atomic_across_crash() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(a, &pattern(4096, 1)).unwrap();
    lld.flush(FailureSet::PowerFailure).unwrap();

    // An ARU that updates `a` and creates `b`, flushed only in part:
    // the flush happens *before* the EndARU.
    lld.begin_aru().unwrap();
    lld.write(a, &pattern(4096, 99)).unwrap();
    let b = lld.new_block(lid, Pred::After(a)).unwrap();
    lld.write(b, &pattern(4096, 98)).unwrap();
    lld.flush(FailureSet::PowerFailure).unwrap();
    // Crash before end_aru: all three operations must vanish.
    let mut lld = crash_and_reopen(lld);
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a]);
    let mut buf = vec![0u8; 4096];
    lld.read(a, &mut buf).unwrap();
    assert_eq!(buf, pattern(4096, 1), "ARU write must be rolled back");
    assert!(lld.stats().recovery_records_discarded > 0);
}

#[test]
fn completed_aru_survives_crash() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(a, &pattern(4096, 1)).unwrap();

    lld.begin_aru().unwrap();
    lld.write(a, &pattern(4096, 50)).unwrap();
    let b = lld.new_block(lid, Pred::After(a)).unwrap();
    lld.write(b, &pattern(4096, 51)).unwrap();
    lld.end_aru().unwrap();
    lld.flush(FailureSet::PowerFailure).unwrap();

    let mut lld = crash_and_reopen(lld);
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a, b]);
    let mut buf = vec![0u8; 4096];
    lld.read(a, &mut buf).unwrap();
    assert_eq!(buf, pattern(4096, 50));
    lld.read(b, &mut buf).unwrap();
    assert_eq!(buf, pattern(4096, 51));
}

#[test]
fn torn_segment_write_is_ignored_at_recovery() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(a, &pattern(4096, 1)).unwrap();
    lld.flush(FailureSet::PowerFailure).unwrap();

    // Arm a crash that tears the next segment write halfway.
    let b = lld.new_block(lid, Pred::After(a)).unwrap();
    lld.write(b, &pattern(4096, 2)).unwrap();
    lld.disk_mut().crash_after_writes(10);
    let r = lld.flush(FailureSet::PowerFailure);
    assert!(r.is_err(), "torn write must surface as an error");

    let config = lld.config().clone();
    let mut disk = lld.into_disk();
    disk.revive();
    let mut lld = Lld::open(disk, config).unwrap();
    // The torn partial is invisible; the earlier flushed state survives.
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a]);
    let mut buf = vec![0u8; 4096];
    lld.read(a, &mut buf).unwrap();
    assert_eq!(buf, pattern(4096, 1));
}

#[test]
fn clean_shutdown_checkpoint_roundtrip() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let mut pred = Pred::Start;
    let mut bids = Vec::new();
    for i in 0..20u8 {
        let bid = lld.new_block(lid, pred).unwrap();
        lld.write(bid, &pattern(1000 + i as usize, i)).unwrap();
        bids.push(bid);
        pred = Pred::After(bid);
    }
    lld.shutdown().unwrap();
    assert_eq!(lld.flush(FailureSet::PowerFailure), Err(LdError::ShutDown));

    let config = lld.config().clone();
    let disk = lld.into_disk();
    let mut lld = Lld::open(disk, config.clone()).unwrap();
    assert!(lld.stats().recovered_from_checkpoint);
    assert_eq!(
        lld.list_blocks(lid).unwrap(),
        bids,
        "checkpoint restores lists"
    );
    for (i, bid) in bids.iter().enumerate() {
        let mut buf = vec![0u8; 2000];
        let n = lld.read(*bid, &mut buf).unwrap();
        assert_eq!(n, 1000 + i);
        assert_eq!(&buf[..n], &pattern(n, i as u8)[..]);
    }

    // The marker was invalidated on load: a crash now must fall back to
    // the sweep and still produce the same state.
    let mut lld2 = crash_and_reopen(lld);
    assert!(!lld2.stats().recovered_from_checkpoint);
    assert_eq!(lld2.list_blocks(lid).unwrap(), bids);
}

#[test]
fn checkpoint_load_equals_sweep_rebuild() {
    // Build state, shut down, then compare checkpoint-loaded tables with a
    // sweep of the same medium.
    let mut lld = small_lld();
    let l1 = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let l2 = lld
        .new_list(PredList::After(l1), ListHints::default())
        .unwrap();
    let mut pred = Pred::Start;
    for i in 0..30u8 {
        let lid = if i % 2 == 0 { l1 } else { l2 };
        let p = if i % 2 == 0 { pred } else { Pred::Start };
        let bid = lld.new_block(lid, p).unwrap();
        lld.write(bid, &pattern(3000, i)).unwrap();
        if i % 2 == 0 {
            pred = Pred::After(bid);
        }
    }
    lld.shutdown().unwrap();
    let config = lld.config().clone();
    let disk = lld.into_disk();

    let mut from_ckpt = Lld::open(disk, config.clone()).unwrap();
    assert!(from_ckpt.stats().recovered_from_checkpoint);
    let ckpt_l1 = from_ckpt.list_blocks(l1).unwrap();
    let ckpt_l2 = from_ckpt.list_blocks(l2).unwrap();
    let ckpt_lists = from_ckpt.list_of_lists();

    let mut disk = from_ckpt.into_disk();
    disk.crash_now();
    disk.revive();
    let mut from_sweep = Lld::open(disk, config).unwrap();
    assert!(!from_sweep.stats().recovered_from_checkpoint);
    assert_eq!(from_sweep.list_blocks(l1).unwrap(), ckpt_l1);
    assert_eq!(from_sweep.list_blocks(l2).unwrap(), ckpt_l2);
    assert_eq!(from_sweep.list_of_lists(), ckpt_lists);
}

#[test]
fn cleaner_reclaims_overwritten_segments() {
    // Small disk: fill it, then overwrite everything repeatedly so dead
    // segments accumulate and cleaning must kick in.
    let disk = SimDisk::hp_c3010_with_capacity(2 << 20);
    let mut lld = Lld::format(disk, LldConfig::small_for_tests()).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let mut bids = Vec::new();
    let mut pred = Pred::Start;
    // ~1 MB of blocks on a 2 MB disk.
    for _ in 0..256 {
        let bid = lld.new_block(lid, pred).unwrap();
        bids.push(bid);
        pred = Pred::After(bid);
    }
    for round in 0..6u8 {
        for (i, bid) in bids.iter().enumerate() {
            lld.write(*bid, &pattern(4096, round.wrapping_mul(37) ^ i as u8))
                .unwrap();
        }
    }
    assert!(lld.stats().segments_cleaned > 0, "cleaner must have run");
    // All data still correct after cleaning.
    for (i, bid) in bids.iter().enumerate() {
        let mut buf = vec![0u8; 4096];
        lld.read(*bid, &mut buf).unwrap();
        assert_eq!(
            buf,
            pattern(4096, 5u8.wrapping_mul(37) ^ i as u8),
            "block {i}"
        );
    }
    // And the state survives a crash (cleaner re-logged metadata).
    lld.flush(FailureSet::PowerFailure).unwrap();
    let mut lld = crash_and_reopen(lld);
    assert_eq!(lld.list_blocks(lid).unwrap(), bids);
    for (i, bid) in bids.iter().enumerate() {
        let mut buf = vec![0u8; 4096];
        lld.read(*bid, &mut buf).unwrap();
        assert_eq!(buf, pattern(4096, 5u8.wrapping_mul(37) ^ i as u8));
    }
}

#[test]
fn no_space_is_reported_and_recoverable() {
    let disk = SimDisk::hp_c3010_with_capacity(1 << 20);
    let mut lld = Lld::format(disk, LldConfig::small_for_tests()).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let mut bids = Vec::new();
    let mut pred = Pred::Start;
    loop {
        match lld.new_block(lid, pred) {
            Ok(bid) => {
                lld.write(bid, &pattern(4096, bids.len() as u8)).unwrap();
                pred = Pred::After(bid);
                bids.push(bid);
            }
            Err(LdError::NoSpace) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(!bids.is_empty());
    // Freeing a block makes room again.
    let victim = bids.pop().unwrap();
    lld.delete_block(victim, lid, None).unwrap();
    assert!(lld.new_block(lid, Pred::Start).is_ok());
}

#[test]
fn compression_hint_shrinks_stored_bytes_transparently() {
    let mut lld = small_lld();
    let lid = lld
        .new_list(PredList::Start, ListHints::compressed())
        .unwrap();
    let bid = lld.new_block(lid, Pred::Start).unwrap();
    // Compressible content.
    let data: Vec<u8> = b"segment cleaning policy "
        .iter()
        .copied()
        .cycle()
        .take(4096)
        .collect();
    lld.write(bid, &data).unwrap();
    assert!(lld.stats().stored_bytes_written < lld.stats().user_bytes_written / 2);
    lld.seal().unwrap();
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(bid, &mut buf).unwrap(), 4096);
    assert_eq!(buf, data);

    // Compressed blocks survive crash recovery too.
    lld.flush(FailureSet::PowerFailure).unwrap();
    let mut lld = crash_and_reopen(lld);
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(bid, &mut buf).unwrap(), 4096);
    assert_eq!(buf, data);
}

#[test]
fn multiple_block_sizes_coexist() {
    let mut lld = small_lld();
    let files = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let inodes = lld
        .new_list(PredList::After(files), ListHints::default())
        .unwrap();
    let d = lld.new_block(files, Pred::Start).unwrap();
    let i = lld.new_block_with_size(inodes, Pred::Start, 64).unwrap();
    lld.write(d, &pattern(4096, 7)).unwrap();
    lld.write(i, &pattern(64, 8)).unwrap();
    assert_eq!(
        lld.write(i, &pattern(65, 8)),
        Err(LdError::BlockTooLarge { got: 65, max: 64 })
    );
    lld.flush(FailureSet::PowerFailure).unwrap();
    let mut lld = crash_and_reopen(lld);
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(i, &mut buf).unwrap(), 64);
    assert_eq!(&buf[..64], &pattern(64, 8)[..]);
    // Size classes survive recovery: an oversized write still fails.
    assert!(matches!(
        lld.write(i, &pattern(65, 8)),
        Err(LdError::BlockTooLarge { .. })
    ));
}

#[test]
fn delete_list_frees_blocks_and_survives_crash() {
    let mut lld = small_lld();
    let l1 = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let l2 = lld
        .new_list(PredList::After(l1), ListHints::default())
        .unwrap();
    let keep = lld.new_block(l2, Pred::Start).unwrap();
    lld.write(keep, &pattern(4096, 11)).unwrap();
    let mut pred = Pred::Start;
    for i in 0..10u8 {
        let bid = lld.new_block(l1, pred).unwrap();
        lld.write(bid, &pattern(4096, i)).unwrap();
        pred = Pred::After(bid);
    }
    let free_before = lld.free_bytes();
    lld.delete_list(l1, None).unwrap();
    assert_eq!(lld.free_bytes(), free_before + 10 * 4096);
    assert_eq!(lld.list_blocks(l1), Err(LdError::UnknownList(l1)));
    lld.flush(FailureSet::PowerFailure).unwrap();

    let mut lld = crash_and_reopen(lld);
    assert_eq!(lld.list_blocks(l1), Err(LdError::UnknownList(l1)));
    assert_eq!(lld.list_blocks(l2).unwrap(), vec![keep]);
    let mut buf = vec![0u8; 4096];
    lld.read(keep, &mut buf).unwrap();
    assert_eq!(buf, pattern(4096, 11));
}

#[test]
fn move_sublist_and_move_list_are_recoverable() {
    let mut lld = small_lld();
    let l1 = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let l2 = lld
        .new_list(PredList::After(l1), ListHints::default())
        .unwrap();
    let mut bids = Vec::new();
    let mut pred = Pred::Start;
    for i in 0..5u8 {
        let bid = lld.new_block(l1, pred).unwrap();
        lld.write(bid, &pattern(512, i)).unwrap();
        bids.push(bid);
        pred = Pred::After(bid);
    }
    lld.move_sublist(l1, bids[1], bids[3], l2, Pred::Start)
        .unwrap();
    lld.move_list(l2, PredList::Start).unwrap();
    assert_eq!(lld.list_blocks(l1).unwrap(), vec![bids[0], bids[4]]);
    assert_eq!(
        lld.list_blocks(l2).unwrap(),
        vec![bids[1], bids[2], bids[3]]
    );
    assert_eq!(lld.list_of_lists(), vec![l2, l1]);
    lld.flush(FailureSet::PowerFailure).unwrap();

    let mut lld = crash_and_reopen(lld);
    assert_eq!(lld.list_blocks(l1).unwrap(), vec![bids[0], bids[4]]);
    assert_eq!(
        lld.list_blocks(l2).unwrap(),
        vec![bids[1], bids[2], bids[3]]
    );
    assert_eq!(lld.list_of_lists(), vec![l2, l1]);
    // Ownership moved: deleting via the new list works.
    lld.delete_block(bids[2], l2, Some(bids[1])).unwrap();
}

#[test]
fn reorganizer_clusters_a_fragmented_list() {
    let disk = SimDisk::hp_c3010_with_capacity(8 << 20);
    let mut lld = Lld::format(disk, LldConfig::small_for_tests()).unwrap();
    let a = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let b = lld
        .new_list(PredList::After(a), ListHints::default())
        .unwrap();
    // Interleave writes of two lists so both end up fragmented.
    let mut pa = Pred::Start;
    let mut pb = Pred::Start;
    let mut bids_a = Vec::new();
    for i in 0..40u8 {
        let ba = lld.new_block(a, pa).unwrap();
        lld.write(ba, &pattern(4096, i)).unwrap();
        pa = Pred::After(ba);
        bids_a.push(ba);
        let bb = lld.new_block(b, pb).unwrap();
        lld.write(bb, &pattern(4096, i ^ 0xFF)).unwrap();
        pb = Pred::After(bb);
    }
    lld.seal().unwrap();
    let segs_before: std::collections::HashSet<_> = bids_a
        .iter()
        .filter_map(|&bid| lld.block_segment(bid))
        .collect();
    let (rewritten, _) = lld.reorganize(2, 0).unwrap();
    assert_eq!(rewritten, 2);
    lld.seal().unwrap();
    let segs_after: std::collections::HashSet<_> = bids_a
        .iter()
        .filter_map(|&bid| lld.block_segment(bid))
        .collect();
    assert!(
        segs_after.len() < segs_before.len(),
        "reorganizer should reduce the number of segments a list spans \
         ({} -> {})",
        segs_before.len(),
        segs_after.len()
    );
    // Data intact.
    for (i, bid) in bids_a.iter().enumerate() {
        let mut buf = vec![0u8; 4096];
        lld.read(*bid, &mut buf).unwrap();
        assert_eq!(buf, pattern(4096, i as u8));
    }
}

#[test]
fn greedy_and_cost_benefit_policies_both_work() {
    for policy in [CleaningPolicy::Greedy, CleaningPolicy::CostBenefit] {
        let disk = SimDisk::hp_c3010_with_capacity(2 << 20);
        let config = LldConfig {
            cleaning_policy: policy,
            ..LldConfig::small_for_tests()
        };
        let mut lld = Lld::format(disk, config).unwrap();
        let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
        let mut bids = Vec::new();
        let mut pred = Pred::Start;
        for _ in 0..200 {
            let bid = lld.new_block(lid, pred).unwrap();
            bids.push(bid);
            pred = Pred::After(bid);
        }
        for round in 0..5u8 {
            for (i, bid) in bids.iter().enumerate() {
                lld.write(*bid, &pattern(4096, round ^ i as u8)).unwrap();
            }
        }
        for (i, bid) in bids.iter().enumerate() {
            let mut buf = vec![0u8; 4096];
            lld.read(*bid, &mut buf).unwrap();
            assert_eq!(buf, pattern(4096, 4u8 ^ i as u8), "{policy:?} block {i}");
        }
    }
}

#[test]
fn reservations_guarantee_allocation() {
    let disk = SimDisk::hp_c3010_with_capacity(1 << 20);
    let mut lld = Lld::format(disk, LldConfig::small_for_tests()).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let free = lld.free_bytes();
    let r = lld.reserve(free).unwrap();
    assert_eq!(lld.new_block(lid, Pred::Start), Err(LdError::NoSpace));
    lld.draw_reservation(r, 4096).unwrap();
    assert!(lld.new_block(lid, Pred::Start).is_ok());
    lld.cancel_reservation(r).unwrap();
    assert!(lld.free_bytes() > 0);
}

#[test]
fn recovery_time_scales_with_summaries_not_data() {
    // Write a lot of data, crash, and verify recovery reads only the
    // summary regions (paper: recovery is "at least one order of magnitude
    // faster than in Loge, since LLD only reads the segment summaries").
    let disk = SimDisk::hp_c3010_with_capacity(16 << 20);
    let mut lld = Lld::format(disk, LldConfig::small_for_tests()).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let mut pred = Pred::Start;
    for i in 0..400u16 {
        let bid = lld.new_block(lid, pred).unwrap();
        lld.write(bid, &pattern(4096, i as u8)).unwrap();
        pred = Pred::After(bid);
    }
    lld.flush(FailureSet::PowerFailure).unwrap();

    let config = lld.config().clone();
    let mut disk = lld.into_disk();
    disk.crash_now();
    disk.revive();
    disk.reset_stats();
    let lld = Lld::open(disk, config).unwrap();
    let segments = u64::from(lld.layout().segments);
    assert_eq!(lld.stats().recovery_summaries_read, segments);
    let sectors_read = lld.disk().stats().sectors_read;
    let summary_sectors = segments * (lld.layout().summary_bytes as u64 / 512);
    assert!(
        sectors_read <= summary_sectors + 16,
        "recovery read {sectors_read} sectors; summaries are only {summary_sectors}"
    );
}

#[test]
fn stats_track_writes_and_lists() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let bid = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(bid, &pattern(4096, 1)).unwrap();
    let s = lld.stats();
    assert_eq!(s.block_writes, 1);
    assert_eq!(s.user_bytes_written, 4096);
    assert!(s.list_records_logged >= 2);
    assert!(s.records_logged > s.list_records_logged);
}

#[test]
fn maintain_lists_false_skips_list_logging() {
    let disk = SimDisk::hp_c3010_with_capacity(4 << 20);
    let config = LldConfig {
        maintain_lists: false,
        ..LldConfig::small_for_tests()
    };
    let mut lld = Lld::format(disk, config).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    let b = lld.new_block(lid, Pred::After(a)).unwrap();
    lld.write(a, &pattern(4096, 1)).unwrap();
    assert_eq!(lld.stats().list_records_logged, 0);
    // The in-memory structure still behaves.
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a, b]);
    lld.delete_block(b, lid, Some(a)).unwrap();
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a]);
}

#[test]
fn shutdown_without_free_segments_still_recovers_by_sweep() {
    // Fill the disk almost completely so the checkpoint cannot be written.
    let disk = SimDisk::hp_c3010_with_capacity(1 << 20);
    let mut lld = Lld::format(disk, LldConfig::small_for_tests()).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let mut pred = Pred::Start;
    let mut bids = Vec::new();
    while let Ok(bid) = lld.new_block(lid, pred) {
        lld.write(bid, &pattern(4096, bids.len() as u8)).unwrap();
        pred = Pred::After(bid);
        bids.push(bid);
    }
    lld.shutdown().unwrap();
    let config = lld.config().clone();
    let mut lld = Lld::open(lld.into_disk(), config).unwrap();
    assert_eq!(lld.list_blocks(lid).unwrap(), bids);
}

#[test]
fn swap_contents_swaps_and_survives_crash() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    let b = lld.new_block(lid, Pred::After(a)).unwrap();
    lld.write(a, &pattern(3000, 1)).unwrap();
    lld.write(b, &pattern(500, 2)).unwrap();
    lld.swap_contents(a, b).unwrap();

    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(a, &mut buf).unwrap(), 500);
    assert_eq!(&buf[..500], &pattern(500, 2)[..]);
    assert_eq!(lld.read(b, &mut buf).unwrap(), 3000);
    assert_eq!(&buf[..3000], &pattern(3000, 1)[..]);
    // List order is untouched; only contents traded places.
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a, b]);

    lld.flush(FailureSet::PowerFailure).unwrap();
    let mut lld = crash_and_reopen(lld);
    assert_eq!(lld.read(a, &mut buf).unwrap(), 500);
    assert_eq!(&buf[..500], &pattern(500, 2)[..]);
    assert_eq!(lld.read(b, &mut buf).unwrap(), 3000);
    assert_eq!(&buf[..3000], &pattern(3000, 1)[..]);
}

#[test]
fn swap_contents_validates_size_classes() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let big = lld.new_block(lid, Pred::Start).unwrap();
    let small = lld.new_block_with_size(lid, Pred::After(big), 64).unwrap();
    lld.write(big, &pattern(2000, 1)).unwrap();
    lld.write(small, &pattern(64, 2)).unwrap();
    // 2000 bytes cannot move into a 64-byte block.
    assert_eq!(
        lld.swap_contents(big, small),
        Err(LdError::BlockTooLarge { got: 2000, max: 64 })
    );
    // Shrink the big block's content; now the swap is legal.
    lld.write(big, &pattern(60, 3)).unwrap();
    lld.swap_contents(big, small).unwrap();
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(small, &mut buf).unwrap(), 60);
    assert_eq!(&buf[..60], &pattern(60, 3)[..]);
}

#[test]
fn swap_contents_survives_cleaning_of_the_swap_record() {
    // The Swap record redirects mappings without a WriteBlock; cleaning
    // the segment holding it must forward the blocks so recovery still
    // sees the swapped state.
    let disk = SimDisk::hp_c3010_with_capacity(2 << 20);
    let mut lld = Lld::format(disk, LldConfig::small_for_tests()).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    let b = lld.new_block(lid, Pred::After(a)).unwrap();
    lld.write(a, &pattern(4096, 1)).unwrap();
    lld.write(b, &pattern(4096, 2)).unwrap();
    lld.swap_contents(a, b).unwrap();
    lld.flush(FailureSet::PowerFailure).unwrap();
    // Grind the log so every early segment (including the one holding the
    // Swap record) gets cleaned.
    let mut filler = Vec::new();
    let mut pred = Pred::After(b);
    for _ in 0..128 {
        let f = lld.new_block(lid, pred).unwrap();
        filler.push(f);
        pred = Pred::After(f);
    }
    for round in 0..8u8 {
        for f in &filler {
            lld.write(*f, &pattern(4096, 0xF0 ^ round)).unwrap();
        }
    }
    assert!(lld.stats().segments_cleaned > 0);
    lld.flush(FailureSet::PowerFailure).unwrap();

    let mut lld = crash_and_reopen(lld);
    let mut buf = vec![0u8; 4096];
    lld.read(a, &mut buf).unwrap();
    assert_eq!(buf, pattern(4096, 2), "a must still hold b's old bytes");
    lld.read(b, &mut buf).unwrap();
    assert_eq!(buf, pattern(4096, 1), "b must still hold a's old bytes");
}

#[test]
fn block_at_offset_addressing() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let mut bids = Vec::new();
    let mut pred = Pred::Start;
    for i in 0..10u8 {
        let b = lld.new_block(lid, pred).unwrap();
        lld.write(b, &pattern(100, i)).unwrap();
        bids.push(b);
        pred = Pred::After(b);
    }
    for (i, expected) in bids.iter().enumerate() {
        assert_eq!(lld.block_at(lid, i as u64).unwrap(), *expected);
    }
    assert_eq!(
        lld.block_at(lid, 10),
        Err(LdError::IndexOutOfRange { lid, index: 10 })
    );
    // Offsets shift under deletion, as arrays do.
    lld.delete_block(bids[0], lid, None).unwrap();
    assert_eq!(lld.block_at(lid, 0).unwrap(), bids[1]);
}

#[test]
fn nvram_absorbs_below_threshold_flushes() {
    let disk = SimDisk::hp_c3010_with_capacity(8 << 20).with_nvram(512 << 10);
    let mut lld = Lld::format(disk, LldConfig::small_for_tests()).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(a, &pattern(4096, 1)).unwrap();
    let disk_writes_before = lld.disk().stats().write_ops;
    lld.flush(FailureSet::PowerFailure).unwrap();
    // Absorbed by NVRAM: no disk write, no partial segment.
    assert_eq!(lld.stats().nvram_saves, 1);
    assert_eq!(lld.stats().partial_segment_writes, 0);
    assert_eq!(lld.disk().stats().write_ops, disk_writes_before);

    // Crash: the flushed state must come back from the NVRAM tail.
    let mut lld = crash_and_reopen(lld);
    assert!(lld.stats().recovery_nvram_applied);
    assert_eq!(lld.list_blocks(lid).unwrap(), vec![a]);
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(a, &mut buf).unwrap(), 4096);
    assert_eq!(buf, pattern(4096, 1));

    // The materialized state is itself durable: crash again without any
    // further writes and everything is still there.
    let mut lld = crash_and_reopen(lld);
    assert!(
        !lld.stats().recovery_nvram_applied,
        "the image was invalidated after materialization"
    );
    assert_eq!(lld.read(a, &mut buf).unwrap(), 4096);
    assert_eq!(buf, pattern(4096, 1));
}

#[test]
fn nvram_image_is_superseded_by_the_seal() {
    let disk = SimDisk::hp_c3010_with_capacity(8 << 20).with_nvram(512 << 10);
    let mut lld = Lld::format(disk, LldConfig::small_for_tests()).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(a, &pattern(4096, 1)).unwrap();
    lld.flush(FailureSet::PowerFailure).unwrap();
    assert_eq!(lld.stats().nvram_saves, 1);
    // Fill the segment so it seals (which invalidates the image).
    let mut pred = Pred::After(a);
    for i in 0..20u8 {
        let b = lld.new_block(lid, pred).unwrap();
        lld.write(b, &pattern(4096, i)).unwrap();
        pred = Pred::After(b);
    }
    assert!(lld.stats().segments_sealed > 0);
    let mut lld = crash_and_reopen(lld);
    assert!(
        !lld.stats().recovery_nvram_applied,
        "stale image must not apply"
    );
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(a, &mut buf).unwrap(), 4096);
    assert_eq!(buf, pattern(4096, 1));
}

#[test]
fn repeated_nvram_flushes_keep_only_the_newest_tail() {
    let disk = SimDisk::hp_c3010_with_capacity(8 << 20).with_nvram(512 << 10);
    let mut lld = Lld::format(disk, LldConfig::small_for_tests()).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    for round in 0..5u8 {
        lld.write(a, &pattern(3000, round)).unwrap();
        lld.flush(FailureSet::PowerFailure).unwrap();
    }
    assert_eq!(lld.stats().nvram_saves, 5);
    assert_eq!(lld.stats().partial_segment_writes, 0);
    let mut lld = crash_and_reopen(lld);
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(a, &mut buf).unwrap(), 3000);
    assert_eq!(&buf[..3000], &pattern(3000, 4)[..], "newest flush wins");
}

#[test]
fn without_nvram_flag_partial_writes_return() {
    let disk = SimDisk::hp_c3010_with_capacity(8 << 20).with_nvram(512 << 10);
    let config = LldConfig {
        use_nvram: false,
        ..LldConfig::small_for_tests()
    };
    let mut lld = Lld::format(disk, config).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(a, &pattern(4096, 1)).unwrap();
    lld.flush(FailureSet::PowerFailure).unwrap();
    assert_eq!(lld.stats().nvram_saves, 0);
    assert_eq!(lld.stats().partial_segment_writes, 1);
}

#[test]
fn concurrent_arus_commit_independently() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();

    // Two interleaved units; only the first ends before the crash.
    let t1 = lld.begin_aru_id().unwrap();
    let t2 = lld.begin_aru_id().unwrap();

    lld.activate_aru(Some(t1)).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(a, &pattern(1000, 1)).unwrap();

    lld.activate_aru(Some(t2)).unwrap();
    let b = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(b, &pattern(1000, 2)).unwrap();

    lld.activate_aru(Some(t1)).unwrap();
    lld.write(a, &pattern(1000, 3)).unwrap();
    lld.end_aru_id(t1).unwrap();
    lld.activate_aru(None).unwrap();

    // A plain committed operation lands between t1's end and t2's records;
    // with per-record ids it must not accidentally commit t2.
    let c = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(c, &pattern(1000, 4)).unwrap();

    lld.flush(FailureSet::PowerFailure).unwrap();
    // Crash with t2 still open: its operations must vanish; t1's and the
    // plain op survive.
    let mut lld = crash_and_reopen(lld);
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(a, &mut buf).unwrap(), 1000);
    assert_eq!(&buf[..1000], &pattern(1000, 3)[..], "t1 committed fully");
    assert_eq!(lld.read(c, &mut buf).unwrap(), 1000);
    assert_eq!(&buf[..1000], &pattern(1000, 4)[..], "plain op survives");
    assert_eq!(
        lld.read(b, &mut buf),
        Err(LdError::UnknownBlock(b)),
        "t2 never ended; its block must not exist"
    );
    assert!(lld.stats().recovery_records_discarded > 0);
}

#[test]
fn concurrent_aru_bookkeeping_errors() {
    let mut lld = small_lld();
    let t = lld.begin_aru_id().unwrap();
    lld.end_aru_id(t).unwrap();
    assert_eq!(lld.end_aru_id(t), Err(LdError::NoAruOpen), "double end");
    assert_eq!(
        lld.activate_aru(Some(t)),
        Err(LdError::NoAruOpen),
        "activating a closed unit"
    );
    // The serial Table 1 interface still refuses nesting.
    lld.begin_aru().unwrap();
    assert_eq!(lld.begin_aru(), Err(LdError::AruAlreadyOpen));
    lld.end_aru().unwrap();
}

#[test]
fn shutdown_commits_open_concurrent_arus() {
    let mut lld = small_lld();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    let t = lld.begin_aru_id().unwrap();
    lld.activate_aru(Some(t)).unwrap();
    let a = lld.new_block(lid, Pred::Start).unwrap();
    lld.write(a, &pattern(500, 7)).unwrap();
    lld.shutdown().unwrap();

    let config = lld.config().clone();
    let mut lld = Lld::open(lld.into_disk(), config).unwrap();
    let mut buf = vec![0u8; 4096];
    assert_eq!(lld.read(a, &mut buf).unwrap(), 500);
    assert_eq!(&buf[..500], &pattern(500, 7)[..]);
}

#[test]
fn reorganize_hot_clusters_frequently_accessed_blocks() {
    let disk = SimDisk::hp_c3010_with_capacity(16 << 20);
    let config = LldConfig {
        segment_bytes: 128 << 10,
        ..LldConfig::small_for_tests()
    };
    let mut lld = Lld::format(disk, config).unwrap();
    let lid = lld.new_list(PredList::Start, ListHints::default()).unwrap();
    // Spread 600 blocks over many segments.
    let mut bids = Vec::new();
    let mut pred = Pred::Start;
    for i in 0..600u32 {
        let b = lld.new_block(lid, pred).unwrap();
        lld.write(b, &pattern(4096, i as u8)).unwrap();
        bids.push(b);
        pred = Pred::After(b);
    }
    lld.seal().unwrap();
    // Heat up a scattered 5%: every 20th block, read repeatedly.
    let hot: Vec<_> = bids.iter().copied().step_by(20).collect();
    let mut buf = vec![0u8; 4096];
    for _ in 0..10 {
        for b in &hot {
            lld.read(*b, &mut buf).unwrap();
        }
    }
    let spread = |lld: &Lld<SimDisk>| {
        hot.iter()
            .filter_map(|&b| lld.block_segment(b))
            .collect::<std::collections::HashSet<_>>()
            .len()
    };
    let before = spread(&lld);
    let moved = lld.reorganize_hot(64).unwrap();
    assert!(
        moved >= hot.len() as u32,
        "all hot blocks moved (moved {moved})"
    );
    let after = spread(&lld);
    assert!(
        after < before && after <= 2,
        "hot blocks should collapse into one or two segments ({before} -> {after})"
    );
    // Data intact (including blocks that were not moved).
    for (i, b) in bids.iter().enumerate() {
        lld.read(*b, &mut buf).unwrap();
        assert_eq!(buf, pattern(4096, i as u8), "block {i}");
    }
    // And the rearranged state is recoverable.
    lld.flush(FailureSet::PowerFailure).unwrap();
    let mut lld = crash_and_reopen(lld);
    for (i, b) in bids.iter().enumerate() {
        lld.read(*b, &mut buf).unwrap();
        assert_eq!(buf, pattern(4096, i as u8), "recovered block {i}");
    }
}
