//! The in-memory segment being filled (paper §3: "the segment being filled
//! is maintained in main memory and is written in a single disk operation").

use simdisk::SECTOR_SIZE;

use crate::records::{Stamped, SummaryBuilder};

/// The open segment buffer: a data region filling from the front and a
/// summary accumulating records.
#[derive(Debug)]
pub struct SegmentBuffer {
    data: Vec<u8>,
    used: usize,
    data_capacity: usize,
    summary_capacity: usize,
    summary: SummaryBuilder,
    /// Pending modeled compression CPU (µs) for the pipeline model: charged
    /// at seal time as `max(compress, disk write)` (§3.3/§4.2).
    pub compress_us_pending: u64,
}

impl SegmentBuffer {
    /// Creates an empty buffer for a segment with the given region sizes.
    pub fn new(data_capacity: usize, summary_capacity: usize) -> Self {
        Self {
            data: vec![0u8; data_capacity],
            used: 0,
            data_capacity,
            summary_capacity,
            summary: SummaryBuilder::new(),
            compress_us_pending: 0,
        }
    }

    /// Bytes of data currently in the buffer.
    pub fn data_used(&self) -> usize {
        self.used
    }

    /// Fill level of the data region in percent.
    pub fn fill_pct(&self) -> u32 {
        (self.used * 100 / self.data_capacity) as u32
    }

    /// Whether nothing (data or records) has been put in the buffer.
    pub fn is_empty(&self) -> bool {
        self.used == 0 && self.summary.count() == 0
    }

    /// Number of records accumulated.
    pub fn record_count(&self) -> u32 {
        self.summary.count()
    }

    /// Whether `bytes` more data and `records` more records fit.
    pub fn has_room(&self, bytes: usize, records: usize) -> bool {
        self.used + bytes <= self.data_capacity
            && self.summary.encoded_len() + records * SummaryBuilder::MAX_RECORD_LEN
                <= self.summary_capacity
    }

    /// Appends block bytes; returns the offset within the data region.
    ///
    /// # Panics
    ///
    /// Panics if the data region overflows — callers must check
    /// [`has_room`](Self::has_room) (and seal) first.
    pub fn append_data(&mut self, bytes: &[u8]) -> u32 {
        assert!(
            self.used + bytes.len() <= self.data_capacity,
            "segment buffer overflow"
        );
        let offset = self.used;
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.used += bytes.len();
        offset as u32
    }

    /// Appends a summary record.
    ///
    /// # Panics
    ///
    /// Panics if the summary region overflows — callers must check
    /// [`has_room`](Self::has_room) (and seal) first.
    pub fn push_record(&mut self, s: Stamped) {
        self.summary.push(s);
        assert!(
            self.summary.encoded_len() <= self.summary_capacity,
            "summary overflow"
        );
    }

    /// Reads back bytes previously appended (serving reads of blocks whose
    /// live copy is still in memory).
    pub fn read(&self, offset: u32, len: u32) -> &[u8] {
        let offset = offset as usize;
        let len = len as usize;
        assert!(offset + len <= self.used, "read beyond buffered data");
        &self.data[offset..offset + len]
    }

    /// Serializes the whole segment (data, padding, summary) for a full
    /// seal — written to disk in a single operation.
    pub fn encode_full(&self, seq: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data_capacity + self.summary_capacity);
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&self.summary.finish(seq, self.summary_capacity));
        out
    }

    /// Serializes the pieces of a partial write (§3.2): the sector-aligned
    /// data prefix actually used (possibly empty) and the summary.
    pub fn encode_partial(&self, seq: u64) -> (Vec<u8>, Vec<u8>) {
        let prefix_len = self.used.div_ceil(SECTOR_SIZE) * SECTOR_SIZE;
        let mut prefix = self.data[..self.used].to_vec();
        prefix.resize(prefix_len, 0);
        (prefix, self.summary.finish(seq, self.summary_capacity))
    }

    /// Empties the buffer for the next segment.
    pub fn reset(&mut self) {
        self.used = 0;
        self.data.fill(0);
        self.summary = SummaryBuilder::new();
        self.compress_us_pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{decode_summary, Record};

    fn rec(ts: u64) -> Stamped {
        Stamped {
            ts,
            ends_aru: true,
            aru: None,
            rec: Record::DeleteBlock { bid: ts },
        }
    }

    #[test]
    fn append_and_read_back() {
        let mut b = SegmentBuffer::new(4096, 1024);
        let o1 = b.append_data(b"hello");
        let o2 = b.append_data(b"world");
        assert_eq!(o1, 0);
        assert_eq!(o2, 5);
        assert_eq!(b.read(o2, 5), b"world");
        assert_eq!(b.data_used(), 10);
    }

    #[test]
    fn room_accounting_tracks_both_regions() {
        let mut b = SegmentBuffer::new(1024, crate::records::SUMMARY_HEADER_LEN + 128);
        assert!(b.has_room(1024, 0));
        assert!(!b.has_room(1025, 0));
        // Each record may cost up to MAX_RECORD_LEN.
        let n = 128 / SummaryBuilder::MAX_RECORD_LEN;
        assert!(b.has_room(0, n));
        assert!(!b.has_room(0, n + 10));
        for i in 0..4 {
            b.push_record(rec(i));
        }
        assert!(b.record_count() == 4);
    }

    #[test]
    fn full_encoding_roundtrips_summary_and_pads() {
        let mut b = SegmentBuffer::new(2048, 1024);
        b.append_data(&[7u8; 100]);
        b.push_record(rec(5));
        let bytes = b.encode_full(9);
        assert_eq!(bytes.len(), 2048 + 1024);
        assert_eq!(&bytes[..100], &[7u8; 100][..]);
        assert!(bytes[100..2048].iter().all(|&x| x == 0));
        let s = decode_summary(&bytes[2048..]).unwrap();
        assert_eq!(s.seq, 9);
        assert_eq!(s.records.len(), 1);
    }

    #[test]
    fn partial_encoding_is_sector_aligned_prefix() {
        let mut b = SegmentBuffer::new(4096, 1024);
        b.append_data(&[3u8; 700]);
        b.push_record(rec(1));
        let (prefix, summary) = b.encode_partial(2);
        assert_eq!(prefix.len(), 1024); // 700 rounded up to 2 sectors.
        assert_eq!(&prefix[..700], &[3u8; 700][..]);
        assert_eq!(summary.len(), 1024);
        assert!(decode_summary(&summary).is_some());
    }

    #[test]
    fn partial_with_no_data_has_empty_prefix() {
        let mut b = SegmentBuffer::new(4096, 1024);
        b.push_record(rec(1));
        let (prefix, _) = b.encode_partial(1);
        assert!(prefix.is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = SegmentBuffer::new(1024, 1024);
        b.append_data(&[1u8; 10]);
        b.push_record(rec(1));
        b.compress_us_pending = 55;
        b.reset();
        assert!(b.is_empty());
        assert_eq!(b.compress_us_pending, 0);
        assert_eq!(b.fill_pct(), 0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn data_overflow_panics() {
        let mut b = SegmentBuffer::new(8, 1024);
        b.append_data(&[0u8; 9]);
    }
}
