//! LLD — the log-structured implementation of the Logical Disk (paper §3).
//!
//! LLD assumes most reads are absorbed by the file-system cache, so disk
//! traffic is dominated by writes; like Sprite LFS it therefore collects
//! dirty blocks in an in-memory segment and writes each segment to disk in
//! one long contiguous operation. The pieces, mapped to the paper:
//!
//! | Paper | Module |
//! |---|---|
//! | block-number map, list table (Fig. 2) | `block_map` |
//! | segment usage table (§3) | `usage` |
//! | segment summaries as metadata log (§3.1) | `records` |
//! | in-memory segment (§3) | `segbuf` |
//! | partial segments on `Flush` (§3.2) | [`LogicalDisk::flush`] on [`Lld`] |
//! | transparent per-list compression (§3.3) | `write`/`read` + [`ldcomp`] |
//! | memory/disk space requirements (§3.4, Tables 2–3) | [`memory`] |
//! | cleaning and clustering (§3.5) | [`cleaner`] |
//! | one-sweep recovery, ARUs, clean-shutdown checkpoint (§3.6) | [`recovery`], [`checkpoint`] |
//!
//! The public surface is the [`ld_core::LogicalDisk`] trait plus LLD-specific
//! maintenance entry points ([`Lld::clean`], [`Lld::reorganize`],
//! [`Lld::reorganize_hot`]) and introspection ([`Lld::stats`],
//! [`Lld::memory_report`]).
//!
//! # Examples
//!
//! ```
//! use ld_core::{FailureSet, ListHints, LogicalDisk, Pred, PredList};
//! use lld::{Lld, LldConfig};
//! use simdisk::SimDisk;
//!
//! // Format the paper's disk and write a block inside an atomic unit.
//! let disk = SimDisk::hp_c3010_with_capacity(16 << 20);
//! let mut ld = Lld::format(disk, LldConfig::default())?;
//! let file = ld.new_list(PredList::Start, ListHints::default())?;
//! let block = ld_core::with_aru(&mut ld, |ld| {
//!     let b = ld.new_block(file, Pred::Start)?;
//!     ld.write(b, b"durable together")?;
//!     Ok(b)
//! })?;
//! ld.flush(FailureSet::PowerFailure)?;
//!
//! // Crash and recover from the medium alone.
//! let config = ld.config().clone();
//! let mut disk = ld.into_disk();
//! disk.crash_now();
//! disk.revive();
//! let mut ld = Lld::open(disk, config)?;
//! let mut buf = vec![0u8; 4096];
//! assert_eq!(ld.read(block, &mut buf)?, 16);
//! assert_eq!(&buf[..16], b"durable together");
//! # Ok::<(), ld_core::LdError>(())
//! ```

mod block_map;
pub mod checkpoint;
pub mod cleaner;
mod config;
pub mod layout;
pub mod memory;
mod nvram;
pub mod records;
pub mod recovery;
mod segbuf;
mod stats;
mod usage;

pub use block_map::{NO_SEG, OPEN_SEG};
pub use cleaner::CleaningPolicy;
pub use config::{CpuModel, LldConfig};
pub use layout::Layout;
pub use memory::{ListGranularity, MemoryModel};
pub use recovery::{NVRAM_SEG, PROVISIONAL_LIST};
pub use stats::LldStats;

/// Identifier of an open atomic recovery unit (§5.4 concurrent extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AruId(pub(crate) u64);

use std::collections::HashMap;

use ld_core::{
    Bid, FailureSet, LdError, Lid, ListHints, LogicalDisk, Pred, PredList, ReservationId, Result,
};
use simdisk::{BlockDev, DiskError};

use block_map::{BlockMap, ListTable};
use records::{Record, Stamped};
use segbuf::SegmentBuffer;
use usage::UsageTable;

pub(crate) fn dev(e: DiskError) -> LdError {
    LdError::Device(e.to_string())
}

/// Reads a sector span with bounded retries against transient media
/// faults, for code paths that run before an [`Lld`] exists (checkpoint
/// load, recovery sweep). Returns `Ok(None)` on success, `Ok(Some(sector))`
/// when the span stayed unreadable after all `attempts`; `retries` counts
/// the failed attempts that were re-driven. Non-media errors propagate.
pub(crate) fn read_sectors_retrying<D: BlockDev>(
    disk: &mut D,
    start: u64,
    buf: &mut [u8],
    attempts: u32,
    retries: &mut u64,
) -> Result<Option<u64>> {
    let attempts = attempts.max(1);
    for attempt in 1..=attempts {
        match disk.read_sectors(start, buf) {
            Ok(()) => return Ok(None),
            Err(DiskError::Unreadable { sector }) => {
                if attempt == attempts {
                    return Ok(Some(sector));
                }
                *retries += 1;
            }
            Err(e) => return Err(dev(e)),
        }
    }
    unreachable!("loop returns on the last attempt")
}

/// The log-structured Logical Disk.
pub struct Lld<D: BlockDev> {
    pub(crate) disk: D,
    pub(crate) config: LldConfig,
    pub(crate) layout: Layout,
    pub(crate) map: BlockMap,
    pub(crate) lists: ListTable,
    pub(crate) usage: UsageTable,
    pub(crate) open: SegmentBuffer,
    /// Live payload bytes currently in the open segment buffer.
    pub(crate) open_live: u64,
    /// Blocks whose live copy is in the open buffer (superset; entries are
    /// validated against the map when the segment seals).
    pub(crate) open_bids: Vec<u64>,
    /// Next record timestamp (a global operation counter, paper §3.1).
    pub(crate) ts: u64,
    /// Next physical segment-write sequence number.
    pub(crate) seq: u64,
    /// Durable scratch copy of the current partial segment (§3.2).
    pub(crate) scratch: Option<u32>,
    /// Segments reclaimed by the cleaner, released once the open segment
    /// (holding the forwarded copies) is durably written.
    pub(crate) pending_free: Vec<u32>,
    /// Placement hint: segment id near which to allocate next.
    pub(crate) last_seg_hint: u32,
    /// Sum of size classes of all allocated blocks.
    pub(crate) allocated_logical: u64,
    pub(crate) reservations: HashMap<u64, u64>,
    pub(crate) next_reservation: u64,
    pub(crate) reserved_bytes: u64,
    /// Open explicit atomic recovery units (§5.4 concurrent extension).
    pub(crate) open_arus: std::collections::HashSet<u64>,
    /// The ARU subsequent operations are tagged with, if any.
    pub(crate) active_aru: Option<u64>,
    pub(crate) next_aru_id: u64,
    pub(crate) shut_down: bool,
    /// Re-entrancy guard: seals during cleaning must not re-trigger it.
    pub(crate) cleaning: bool,
    /// Anything logged or buffered since the last durable write.
    pub(crate) dirty: bool,
    /// Per-block access counts (reads + writes), for the adaptive
    /// rearrangement of §5.3 (Akyürek & Salem: "as LD can rearrange blocks
    /// dynamically, the proposed scheme can be applied to LD too").
    /// Indexed by block number; saturating; halved by each
    /// [`reorganize_hot`](Self::reorganize_hot) so estimates age out.
    pub(crate) heat: Vec<u32>,
    pub(crate) stats: LldStats,
    /// Tagged command queue (present iff `config.queue_depth >= 1`).
    /// Segment writes submit here; every direct read or write of the
    /// medium first drains it, so queued writes are never reordered
    /// against unqueued I/O.
    pub(crate) queue: Option<simdisk::RequestQueue>,
    /// An NVRAM invalidation deferred because the seal that supersedes
    /// the NVRAM image is still in flight in the queue. Invalidating
    /// earlier would open a crash window where neither the NVRAM nor the
    /// medium holds acknowledged data.
    pub(crate) nvram_invalidate_deferred: bool,
    /// Optional event tracer; `None` costs one branch per traced site.
    pub(crate) tracer: Option<ld_trace::Tracer>,
    /// Persistent bad-block remap table: sectors confirmed unreadable whose
    /// live data (if any) has been relocated. Carried through checkpoints.
    pub(crate) bad_sectors: std::collections::BTreeSet<u64>,
    /// Sectors that failed at least one read attempt since the last scrub;
    /// [`scrub`](Self::scrub) probes them and either clears or retires them.
    pub(crate) suspect_sectors: std::collections::BTreeSet<u64>,
}

impl<D: BlockDev> std::fmt::Debug for Lld<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lld")
            .field("segments", &self.layout.segments)
            .field("blocks", &self.map.allocated())
            .field("lists", &self.lists.allocated())
            .field("free_segments", &self.usage.free_count())
            .finish_non_exhaustive()
    }
}

impl<D: BlockDev> Lld<D> {
    /// Formats the device and creates a fresh, empty LLD.
    ///
    /// Formatting invalidates the checkpoint header and every segment
    /// summary so that stale state from a previous instance cannot
    /// resurrect during a later recovery sweep.
    pub fn format(mut disk: D, config: LldConfig) -> Result<Self> {
        config.validate();
        let layout = Layout::compute(
            disk.total_sectors(),
            config.segment_bytes,
            config.summary_bytes,
        );
        // Invalidate the checkpoint header.
        let zeros = vec![0u8; (layout::HEADER_SECTORS as usize) * simdisk::SECTOR_SIZE];
        disk.write_sectors(0, &zeros).map_err(dev)?;
        // Invalidate all summaries (one zeroed sector kills the magic).
        let sector = vec![0u8; simdisk::SECTOR_SIZE];
        for seg in 0..layout.segments {
            disk.write_sectors(layout.summary_base(seg), &sector)
                .map_err(dev)?;
        }
        Ok(Self::from_parts(
            disk,
            config,
            layout,
            BlockMap::new(),
            ListTable::new(),
            UsageTable::new(layout.segments),
            1,
            1,
        ))
    }

    /// Opens an existing LLD: loads the clean-shutdown checkpoint if one is
    /// valid, otherwise performs the one-sweep recovery over all segment
    /// summaries (paper §3.6).
    pub fn open(disk: D, config: LldConfig) -> Result<Self> {
        config.validate();
        recovery::open(disk, config)
    }

    #[allow(clippy::too_many_arguments)] // Internal constructor gathering recovered state.
    pub(crate) fn from_parts(
        disk: D,
        config: LldConfig,
        layout: Layout,
        map: BlockMap,
        lists: ListTable,
        usage: UsageTable,
        ts: u64,
        seq: u64,
    ) -> Self {
        let allocated_logical = map.iter().map(|(_, e)| u64::from(e.size_class)).sum();
        let open = SegmentBuffer::new(layout.data_bytes, layout.summary_bytes);
        let queue = (config.queue_depth >= 1)
            .then(|| simdisk::RequestQueue::new(config.scheduler, true));
        Self {
            disk,
            config,
            layout,
            map,
            lists,
            usage,
            open,
            open_live: 0,
            open_bids: Vec::new(),
            ts,
            seq,
            scratch: None,
            pending_free: Vec::new(),
            last_seg_hint: 0,
            allocated_logical,
            reservations: HashMap::new(),
            next_reservation: 1,
            reserved_bytes: 0,
            open_arus: std::collections::HashSet::new(),
            active_aru: None,
            next_aru_id: 1,
            shut_down: false,
            cleaning: false,
            dirty: false,
            heat: Vec::new(),
            stats: LldStats::default(),
            queue,
            nvram_invalidate_deferred: false,
            tracer: None,
            bad_sectors: std::collections::BTreeSet::new(),
            suspect_sectors: std::collections::BTreeSet::new(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LldStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = LldStats::default();
    }

    /// Attaches an event tracer for LLD-level events (segment seals,
    /// partial writes, cleaner passes). Attach the *same* tracer to the
    /// underlying disk ([`simdisk::SimDisk::set_tracer`]) to interleave
    /// mechanical events into one timeline. If this LLD was just opened
    /// via a recovery sweep, the sweep is recorded retroactively so the
    /// trace is self-describing. Tracing never touches the simulated
    /// clock.
    pub fn set_tracer(&mut self, tracer: ld_trace::Tracer) {
        if self.stats.recovery_us > 0 && !self.stats.recovered_from_checkpoint {
            tracer.record(
                self.disk.now_us(),
                ld_trace::Event::RecoverySweep {
                    summaries: self.stats.recovery_summaries_read,
                    us: self.stats.recovery_us,
                },
            );
        }
        if let Some(q) = &mut self.queue {
            q.set_tracer(tracer.clone());
        }
        self.tracer = Some(tracer);
    }

    /// Detaches the tracer, if any.
    pub fn clear_tracer(&mut self) {
        if let Some(q) = &mut self.queue {
            q.clear_tracer();
        }
        self.tracer = None;
    }

    /// Records `event` at the current simulated time (no-op untraced).
    #[inline]
    pub(crate) fn trace(&self, event: ld_trace::Event) {
        if let Some(t) = &self.tracer {
            t.record(self.disk.now_us(), event);
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LldConfig {
        &self.config
    }

    /// The computed disk layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Immutable access to the underlying device (clock, disk stats).
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// Mutable access to the underlying device (e.g. to arm faults).
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }

    /// Consumes the LLD, returning the device — used by crash tests, which
    /// drop all in-memory state ("crash") and re-open from the medium.
    pub fn into_disk(self) -> D {
        self.disk
    }

    /// Number of free segments.
    pub fn free_segments(&self) -> u32 {
        self.usage.free_count()
    }

    /// Statistics of the tagged command queue (depth histogram inputs,
    /// coalescing counters), when queueing is on.
    pub fn queue_stats(&self) -> Option<simdisk::QueueStats> {
        self.queue.as_ref().map(|q| *q.stats())
    }

    /// Requests currently in flight in the command queue (0 when
    /// queueing is off or everything has drained).
    pub fn queue_inflight(&self) -> usize {
        self.queue.as_ref().map_or(0, |q| q.len())
    }

    /// The persistent bad-block remap table: sectors retired after
    /// confirmed media faults, in ascending order.
    pub fn bad_sector_table(&self) -> Vec<u64> {
        self.bad_sectors.iter().copied().collect()
    }

    /// Sectors that failed at least one read since the last scrub and have
    /// not yet been probed (diagnostic; [`scrub`](Self::scrub) drains it).
    pub fn suspect_sector_count(&self) -> usize {
        self.suspect_sectors.len()
    }

    /// Number of quarantined segments (retired from circulation because of
    /// media faults).
    pub fn quarantined_segments(&self) -> u32 {
        self.usage
            .iter()
            .filter(|(_, u)| u.state == usage::SegState::Quarantined)
            .count() as u32
    }

    /// Number of allocated blocks.
    pub fn block_count(&self) -> usize {
        self.map.allocated()
    }

    /// Number of allocated lists.
    pub fn list_count(&self) -> usize {
        self.lists.allocated()
    }

    /// The list of lists, front to back.
    pub fn list_of_lists(&self) -> Vec<Lid> {
        self.lists.order().into_iter().map(Lid).collect()
    }

    /// The physical segment currently holding `bid`'s live copy, if it is
    /// on disk (introspection for clustering experiments).
    pub fn block_segment(&self, bid: Bid) -> Option<u32> {
        let e = self.map.get(bid.0)?;
        e.on_disk().then_some(e.seg)
    }

    /// Total live payload bytes on disk (excluding the open segment).
    pub fn live_bytes(&self) -> u64 {
        self.usage.total_live_bytes()
    }

    /// Bytes of payload currently buffered in the open segment.
    pub fn open_segment_bytes(&self) -> usize {
        self.open.data_used()
    }

    /// Records currently buffered in the open segment's summary.
    pub fn open_segment_records(&self) -> u32 {
        self.open.record_count()
    }

    // ----- concurrent atomic recovery units (§5.4 extension) -----

    /// Opens a new atomic recovery unit and returns its identifier without
    /// activating it — the §5.4 extension ("each operation could take an
    /// atomic recovery unit identifier as an argument; BeginARU would
    /// generate these identifiers"). Use [`activate_aru`](Self::activate_aru)
    /// to direct subsequent operations into it; any number of units may be
    /// open at once, and each commits independently at its
    /// [`end_aru_id`](Self::end_aru_id).
    pub fn begin_aru_id(&mut self) -> Result<AruId> {
        self.check_up()?;
        let id = self.next_aru_id;
        self.next_aru_id += 1;
        self.open_arus.insert(id);
        Ok(AruId(id))
    }

    /// Selects which open unit subsequent operations belong to (`None` =
    /// ordinary, individually-committed operations).
    pub fn activate_aru(&mut self, aru: Option<AruId>) -> Result<()> {
        self.check_up()?;
        if let Some(AruId(id)) = aru {
            if !self.open_arus.contains(&id) {
                return Err(LdError::NoAruOpen);
            }
        }
        self.active_aru = aru.map(|a| a.0);
        Ok(())
    }

    /// Commits an open unit: all of its operations become recoverable
    /// together, all-or-nothing.
    pub fn end_aru_id(&mut self, aru: AruId) -> Result<()> {
        self.check_up()?;
        if !self.open_arus.remove(&aru.0) {
            return Err(LdError::NoAruOpen);
        }
        if self.active_aru == Some(aru.0) {
            self.active_aru = None;
        }
        self.ensure_room(0, 1)?;
        let ts = self.next_ts();
        self.open.push_record(Stamped {
            ts,
            ends_aru: true,
            aru: Some(aru.0),
            rec: Record::EndAru,
        });
        self.stats.records_logged += 1;
        self.dirty = true;
        Ok(())
    }

    // ----- internal plumbing -----

    pub(crate) fn check_up(&self) -> Result<()> {
        if self.shut_down {
            Err(LdError::ShutDown)
        } else {
            Ok(())
        }
    }

    pub(crate) fn next_ts(&mut self) -> u64 {
        let t = self.ts;
        self.ts += 1;
        t
    }

    pub(crate) fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Bumps a block's access-frequency estimate.
    pub(crate) fn touch(&mut self, bid: u64) {
        let idx = bid as usize;
        if idx >= self.heat.len() {
            self.heat.resize(idx + 1, 0);
        }
        self.heat[idx] = self.heat[idx].saturating_add(1);
    }

    pub(crate) fn charge_cpu(&mut self, us: u64) {
        if us > 0 {
            self.disk.advance_us(us);
        }
    }

    /// Per-step list CPU cost; zero when list maintenance is disabled
    /// (the §4.2 "version of MINIX LLD that does not support lists").
    pub(crate) fn list_cpu(&self) -> u64 {
        if self.config.maintain_lists {
            self.config.cpu.per_list_op_us
        } else {
            0
        }
    }

    /// CPU cost of one in-memory list-walk step — a pointer chase, much
    /// cheaper than a full list operation (which creates a link tuple).
    pub(crate) fn walk_cpu(&self) -> u64 {
        self.list_cpu() / 4
    }

    fn is_list_record(rec: &Record) -> bool {
        matches!(
            rec,
            Record::Link { .. }
                | Record::ListHead { .. }
                | Record::NewList { .. }
                | Record::DeleteList { .. }
                | Record::ListOrder { .. }
        )
    }

    /// Logs a record outside any user ARU (cleaner/reorganizer traffic).
    /// With per-record ARU ids this cannot break a concurrent unit's
    /// atomicity.
    pub(crate) fn log_internal(&mut self, rec: Record) {
        let saved = self.active_aru.take();
        self.log(rec);
        self.active_aru = saved;
    }

    /// Logs a record with a fresh timestamp. Callers must have reserved
    /// summary room via [`ensure_room`](Self::ensure_room).
    pub(crate) fn log(&mut self, rec: Record) {
        if Self::is_list_record(&rec) {
            if !self.config.maintain_lists {
                // List maintenance disabled (§4.2 overhead experiment):
                // in-memory structure is kept, nothing is logged.
                return;
            }
            self.stats.list_records_logged += 1;
        }
        let ts = self.next_ts();
        self.open.push_record(Stamped {
            ts,
            ends_aru: self.active_aru.is_none(),
            aru: self.active_aru,
            rec,
        });
        self.stats.records_logged += 1;
        self.dirty = true;
    }

    /// Seals the open segment (repeatedly, though once always suffices)
    /// until `bytes` of data and `records` summary records fit.
    pub(crate) fn ensure_room(&mut self, bytes: usize, records: usize) -> Result<()> {
        if bytes > self.layout.data_bytes {
            return Err(LdError::BlockTooLarge {
                got: bytes,
                max: self.layout.data_bytes,
            });
        }
        while !self.open.has_room(bytes, records) {
            self.seal()?;
        }
        Ok(())
    }

    /// Dispatches queued requests until at most `allow` remain pending,
    /// propagating the first device failure (a failed queued write is a
    /// dying drive; the rest of the queue is abandoned like a powered-off
    /// controller's). No-op when queueing is off.
    pub(crate) fn drain_queue_to(&mut self, allow: usize) -> Result<()> {
        let Some(q) = self.queue.as_mut() else {
            return Ok(());
        };
        while q.len() > allow {
            let Some(c) = q.dispatch_one(&mut self.disk) else {
                break;
            };
            if let Err(e) = c.result {
                q.abandon();
                return Err(dev(e));
            }
        }
        if self.nvram_invalidate_deferred && self.queue.as_ref().is_some_and(|q| q.is_empty()) {
            self.nvram_invalidate_deferred = false;
            self.invalidate_nvram();
        }
        Ok(())
    }

    /// Fully drains the command queue. Every direct read or write of the
    /// medium calls this first, so queued writes are never reordered
    /// against unqueued I/O — the fence that keeps write-behind
    /// crash-consistent.
    pub(crate) fn drain_queue(&mut self) -> Result<()> {
        if self.queue.as_ref().is_some_and(|q| !q.is_empty()) {
            self.stats.queue_drains += 1;
        }
        self.drain_queue_to(0)
    }

    /// Adjusts accounting when a block's old copy dies (rewrite or delete).
    pub(crate) fn kill_copy(&mut self, entry: &block_map::BlockEntry) {
        if entry.seg == OPEN_SEG {
            self.open_live -= u64::from(entry.stored_len);
        } else if entry.on_disk() {
            self.usage.sub_live(entry.seg, u64::from(entry.stored_len));
        }
    }

    /// Writes the open segment to a free physical segment in a single disk
    /// operation, then releases superseded scratch/pending segments and, if
    /// the free pool ran low, runs the cleaner.
    pub(crate) fn seal(&mut self) -> Result<()> {
        if self.open.is_empty() {
            return Ok(());
        }
        let seg = self
            .usage
            .alloc_near(self.last_seg_hint)
            .ok_or(LdError::NoSpace)?;
        let seq = self.next_seq();
        let fill_bytes = self.open.data_used() as u64;
        let bytes = self.open.encode_full(seq);
        let t0 = self.disk.now_us();
        if let Some(q) = self.queue.as_mut() {
            // Write-behind: submit and only drain down to the allowance.
            // Submission costs no simulated time; the device time is paid
            // when the scheduler dispatches (possibly coalesced with an
            // adjacent seal).
            q.submit_write(&self.disk, self.layout.segment_base(seg), &bytes);
            self.stats.queued_segment_writes += 1;
            self.drain_queue_to(self.config.writeback_allowance())?;
        } else {
            self.disk
                .write_sectors(self.layout.segment_base(seg), &bytes)
                .map_err(dev)?;
        }
        let write_us = self.disk.now_us() - t0;
        self.trace(ld_trace::Event::SegmentSeal {
            seg,
            write_seq: seq,
            fill_bytes,
            cap_bytes: self.layout.data_bytes as u64,
        });
        // Compression pipeline (§3.3): this segment's compression CPU
        // overlapped the previous write; in steady state each segment costs
        // max(compress, write).
        let extra = self.open.compress_us_pending.saturating_sub(write_us);
        self.charge_cpu(extra);

        // Re-point blocks whose live copy was in memory.
        for bid in std::mem::take(&mut self.open_bids) {
            if let Some(e) = self.map.get_mut(bid) {
                if e.seg == OPEN_SEG {
                    e.seg = seg;
                }
            }
        }
        // alloc_near marked the segment Live with zero bytes.
        self.usage.add_live(seg, self.open_live, self.ts);
        if let Some(s) = self.scratch.take() {
            self.usage.release(s);
        }
        for s in std::mem::take(&mut self.pending_free) {
            self.usage.release(s);
        }
        self.open_live = 0;
        self.open.reset();
        self.last_seg_hint = seg;
        self.dirty = false;
        self.stats.segments_sealed += 1;
        if self.queue.as_ref().is_some_and(|q| !q.is_empty()) {
            // The seal superseding the NVRAM image is still in flight;
            // invalidate only once it is on the medium (see
            // `nvram_invalidate_deferred`).
            self.nvram_invalidate_deferred = true;
        } else {
            self.invalidate_nvram();
        }

        if self.usage.free_count() <= self.config.cleaning_reserve_segments && !self.cleaning {
            // Per-record ARU ids let cleaner records interleave with open
            // units without breaking their atomicity, so cleaning never
            // needs to be deferred for ARUs.
            self.clean_to_reserve()?;
        }
        Ok(())
    }

    /// Writes the current (below-threshold) segment contents to a scratch
    /// segment without giving up the in-memory copy — the paper's partial
    /// segment strategy (§3.2). Costs one extra seek and write; the scratch
    /// is recycled with zero cleaning work when the segment seals.
    pub(crate) fn partial_flush(&mut self) -> Result<()> {
        // The partial image is written directly; earlier queued seals must
        // be on the medium first (log-order fence).
        self.drain_queue()?;
        let seg = self
            .usage
            .alloc_near(self.last_seg_hint)
            .ok_or(LdError::NoSpace)?;
        self.usage.mark_scratch(seg);
        let seq = self.next_seq();
        let flushed_bytes = self.open.data_used() as u64;
        let (prefix, summary) = self.open.encode_partial(seq);
        let t0 = self.disk.now_us();
        if !prefix.is_empty() {
            self.disk
                .write_sectors(self.layout.segment_base(seg), &prefix)
                .map_err(dev)?;
        }
        self.disk
            .write_sectors(self.layout.summary_base(seg), &summary)
            .map_err(dev)?;
        let write_us = self.disk.now_us() - t0;
        let extra = self.open.compress_us_pending.saturating_sub(write_us);
        self.charge_cpu(extra);
        self.open.compress_us_pending = 0;

        if let Some(old) = self.scratch.replace(seg) {
            self.usage.release(old);
        }
        for s in std::mem::take(&mut self.pending_free) {
            self.usage.release(s);
        }
        self.dirty = false;
        self.stats.partial_segment_writes += 1;
        self.trace(ld_trace::Event::PartialWrite {
            seg,
            bytes: flushed_bytes,
        });
        self.invalidate_nvram();
        Ok(())
    }

    /// Saves the open segment's contents into device NVRAM, if enabled,
    /// present, and large enough — absorbing a below-threshold flush
    /// without any disk write (§5.3). Returns whether it succeeded.
    pub(crate) fn try_nvram_save(&mut self) -> Result<bool> {
        if !self.config.use_nvram {
            return Ok(false);
        }
        let capacity = self.disk.nvram_bytes();
        let needed = nvram::image_len(
            self.open.data_used().div_ceil(simdisk::SECTOR_SIZE) * simdisk::SECTOR_SIZE,
            self.layout.summary_bytes,
        );
        if capacity < needed {
            return Ok(false);
        }
        // The NVRAM image acknowledges the open tail as durable; records
        // it holds must never outlive seals still in flight, so fence.
        self.drain_queue()?;
        let seq = self.next_seq();
        let (prefix, summary) = self.open.encode_partial(seq);
        let image = nvram::encode_image(&prefix, &summary);
        self.disk.nvram_write(0, &image).map_err(dev)?;
        self.dirty = false;
        self.stats.nvram_saves += 1;
        Ok(true)
    }

    /// Clears any NVRAM image (its contents just became durable on disk).
    pub(crate) fn invalidate_nvram(&mut self) {
        if self.config.use_nvram && self.disk.nvram_bytes() >= nvram::INVALIDATE.len() {
            // Best effort; a failed invalidation only costs a redundant
            // materialization at the next recovery.
            let _ = self.disk.nvram_write(0, &nvram::INVALIDATE);
        }
    }

    /// Walks a list front to back, with a cycle guard.
    pub(crate) fn walk_list(&self, lid: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let Some(entry) = self.lists.get(lid) else {
            return out;
        };
        let limit = self.map.allocated() + 1;
        let mut cur = entry.first;
        while let Some(bid) = cur {
            out.push(bid);
            if out.len() > limit {
                // A cycle would be an invariant violation; stop rather than
                // spin. Debug builds scream.
                debug_assert!(false, "cycle in list {lid}");
                break;
            }
            cur = self.map.get(bid).and_then(|e| e.next);
        }
        out
    }

    /// Finds the predecessor of `bid` on `lid`, using the hint when it is
    /// correct and falling back to a front-to-back search (paper Table 1).
    /// Returns `Ok(None)` when `bid` is the head. Charges list CPU per
    /// search step.
    fn find_pred(&mut self, lid: u64, bid: u64, hint: Option<u64>) -> Result<Option<u64>> {
        if let Some(h) = hint {
            let ok = self
                .map
                .get(h)
                .is_some_and(|e| e.list == lid && e.next == Some(bid));
            self.charge_cpu(self.list_cpu());
            if ok {
                return Ok(Some(h));
            }
        }
        let list = self.lists.get(lid).ok_or(LdError::UnknownList(Lid(lid)))?;
        if list.first == Some(bid) {
            return Ok(None);
        }
        let mut steps = 0u64;
        let mut cur = list.first;
        while let Some(c) = cur {
            steps += 1;
            let next = self.map.get(c).and_then(|e| e.next);
            if next == Some(bid) {
                self.charge_cpu(steps * self.walk_cpu());
                return Ok(Some(c));
            }
            cur = next;
        }
        self.charge_cpu(steps * self.walk_cpu());
        Err(LdError::NotOnList {
            bid: Bid(bid),
            lid: Lid(lid),
        })
    }

    /// Reads a sector span, re-driving the request up to the configured
    /// retry budget when the medium reports a fault. Each failed attempt
    /// consumed real simulated disk time (attributed to the mechanical
    /// components it used) and is traced as a `ReadRetry` event. Returns
    /// `Ok(None)` on success and `Ok(Some(sector))` when the span stayed
    /// unreadable; the failing sector joins the suspect set either way so
    /// a later [`scrub`](Self::scrub) can probe and retire it.
    pub(crate) fn read_span_retrying(&mut self, start: u64, buf: &mut [u8]) -> Result<Option<u64>> {
        // A direct read must observe every queued write (the queue itself
        // orders only its own requests).
        self.drain_queue()?;
        let attempts = self.config.read_retries.max(1);
        for attempt in 1..=attempts {
            let t0 = self.disk.now_us();
            match self.disk.read_sectors(start, buf) {
                Ok(()) => return Ok(None),
                Err(DiskError::Unreadable { sector }) => {
                    self.suspect_sectors.insert(sector);
                    if attempt == attempts {
                        return Ok(Some(sector));
                    }
                    self.stats.retries += 1;
                    let us = self.disk.now_us() - t0;
                    self.trace(ld_trace::Event::ReadRetry {
                        sector,
                        attempt: u64::from(attempt),
                        us,
                    });
                }
                Err(e) => return Err(dev(e)),
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    /// Reads the stored bytes of a block copy (from the open buffer or from
    /// disk).
    fn read_stored(&mut self, e: &block_map::BlockEntry) -> Result<Vec<u8>> {
        if e.stored_len == 0 {
            // A zero-length write leaves nothing on the medium to fetch.
            return Ok(Vec::new());
        }
        if e.seg == OPEN_SEG {
            self.stats.block_reads_from_memory += 1;
            return Ok(self.open.read(e.offset, e.stored_len).to_vec());
        }
        let (start, count) =
            self.layout
                .data_sector_span(e.seg, e.offset as usize, e.stored_len as usize);
        let mut sectors = vec![0u8; (count as usize) * simdisk::SECTOR_SIZE];
        if let Some(sector) = self.read_span_retrying(start, &mut sectors)? {
            self.stats.unreadable_blocks += 1;
            return Err(LdError::Device(format!(
                "media fault: sector {sector} unreadable after {} attempts",
                self.config.read_retries.max(1)
            )));
        }
        let begin = e.offset as usize % simdisk::SECTOR_SIZE;
        Ok(sectors[begin..begin + e.stored_len as usize].to_vec())
    }
}

impl<D: BlockDev> LogicalDisk for Lld<D> {
    fn default_block_size(&self) -> usize {
        self.config.default_block_size
    }

    fn capacity_bytes(&self) -> u64 {
        let payload_segments = self
            .layout
            .segments
            .saturating_sub(self.config.cleaning_reserve_segments);
        u64::from(payload_segments) * self.layout.data_bytes as u64
    }

    fn free_bytes(&self) -> u64 {
        self.capacity_bytes()
            .saturating_sub(self.allocated_logical)
            .saturating_sub(self.reserved_bytes)
    }

    fn read(&mut self, bid: Bid, buf: &mut [u8]) -> Result<usize> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        let e = *self.map.get(bid.0).ok_or(LdError::UnknownBlock(bid))?;
        if buf.len() < e.logical_len as usize {
            return Err(LdError::BufferTooSmall {
                need: e.logical_len as usize,
                got: buf.len(),
            });
        }
        self.stats.block_reads += 1;
        self.touch(bid.0);
        if e.seg == NO_SEG {
            return Ok(0);
        }
        let stored = self.read_stored(&e)?;
        if e.compressed {
            let data = ldcomp::decompress(&stored)
                .map_err(|err| LdError::Device(format!("stored block corrupt: {err}")))?;
            self.charge_cpu(self.config.compression_cost.decompress_us(data.len()));
            debug_assert_eq!(data.len(), e.logical_len as usize);
            buf[..data.len()].copy_from_slice(&data);
            Ok(data.len())
        } else {
            buf[..stored.len()].copy_from_slice(&stored);
            Ok(stored.len())
        }
    }

    fn write(&mut self, bid: Bid, data: &[u8]) -> Result<()> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        let e = *self.map.get(bid.0).ok_or(LdError::UnknownBlock(bid))?;
        if data.len() > e.size_class as usize {
            return Err(LdError::BlockTooLarge {
                got: data.len(),
                max: e.size_class as usize,
            });
        }
        let compress = self.lists.get(e.list).is_some_and(|l| l.hints.compress);
        let (stored, compressed) = if compress {
            (ldcomp::compress(data), true)
        } else {
            (data.to_vec(), false)
        };
        self.ensure_room(stored.len(), 1)?;
        if compressed {
            self.open.compress_us_pending += self.config.compression_cost.compress_us(data.len());
        }
        // The seal inside ensure_room may have moved the old copy to disk;
        // re-read the entry before killing it.
        let old = *self.map.get(bid.0).expect("entry verified above"); // PANIC-OK: presence checked at the top of the function
        self.kill_copy(&old);
        let offset = self.open.append_data(&stored);
        self.log(Record::WriteBlock {
            bid: bid.0,
            offset,
            stored_len: stored.len() as u32,
            logical_len: data.len() as u32,
            compressed,
        });
        let entry = self.map.get_mut(bid.0).expect("entry verified above"); // PANIC-OK: presence checked at the top of the function
        entry.seg = OPEN_SEG;
        entry.offset = offset;
        entry.stored_len = stored.len() as u32;
        entry.logical_len = data.len() as u32;
        entry.compressed = compressed;
        self.open_live += stored.len() as u64;
        self.open_bids.push(bid.0);
        self.touch(bid.0);
        self.stats.block_writes += 1;
        self.stats.user_bytes_written += data.len() as u64;
        self.stats.stored_bytes_written += stored.len() as u64;
        let copy_units = data.len().div_ceil(4096) as u64;
        self.charge_cpu(copy_units * self.config.cpu.per_block_copy_us);
        Ok(())
    }

    fn new_block_with_size(&mut self, lid: Lid, pred: Pred, size: usize) -> Result<Bid> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        if size == 0 || size > self.layout.data_bytes || size > u32::MAX as usize {
            return Err(LdError::UnsupportedBlockSize(size));
        }
        if self.lists.get(lid.0).is_none() {
            return Err(LdError::UnknownList(lid));
        }
        if self.free_bytes() < size as u64 {
            return Err(LdError::NoSpace);
        }
        // Validate the predecessor before mutating anything.
        if let Pred::After(p) = pred {
            let ok = self.map.get(p.0).is_some_and(|e| e.list == lid.0);
            if !ok {
                return Err(LdError::NotOnList { bid: p, lid });
            }
        }
        self.ensure_room(0, 3)?;
        let bid = self.map.alloc(lid.0, size as u32);
        self.allocated_logical += size as u64;
        self.log(Record::NewBlock {
            bid,
            lid: lid.0,
            size_class: size as u32,
        });
        match pred {
            Pred::Start => {
                let list = self.lists.get_mut(lid.0).expect("verified above"); // PANIC-OK: presence checked at the top of the function
                let old_head = list.first.replace(bid);
                self.map.get_mut(bid).expect("just allocated").next = old_head; // PANIC-OK: inserted a few lines up
                self.log(Record::ListHead {
                    lid: lid.0,
                    first: Some(bid),
                });
                self.log(Record::Link {
                    bid,
                    next: old_head,
                });
            }
            Pred::After(p) => {
                let pe = self.map.get_mut(p.0).expect("verified above"); // PANIC-OK: presence checked at the top of the function
                let old_next = pe.next.replace(bid);
                self.map.get_mut(bid).expect("just allocated").next = old_next; // PANIC-OK: inserted a few lines up
                self.log(Record::Link {
                    bid: p.0,
                    next: Some(bid),
                });
                self.log(Record::Link {
                    bid,
                    next: old_next,
                });
            }
        }
        self.charge_cpu(2 * self.list_cpu());
        Ok(Bid(bid))
    }

    fn delete_block(&mut self, bid: Bid, lid: Lid, pred_hint: Option<Bid>) -> Result<()> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        let e = *self.map.get(bid.0).ok_or(LdError::UnknownBlock(bid))?;
        if e.list != lid.0 {
            return Err(LdError::NotOnList { bid, lid });
        }
        let pred = self.find_pred(lid.0, bid.0, pred_hint.map(|b| b.0))?;
        self.ensure_room(0, 2)?;
        // The entry may have moved during a seal; its links are unchanged.
        let e = *self.map.get(bid.0).expect("entry verified above"); // PANIC-OK: presence checked at the top of the function
        match pred {
            None => {
                self.lists.get_mut(lid.0).expect("verified").first = e.next; // PANIC-OK: presence checked at the top of the function
                self.log(Record::ListHead {
                    lid: lid.0,
                    first: e.next,
                });
            }
            Some(p) => {
                self.map.get_mut(p).expect("found by search").next = e.next; // PANIC-OK: the predecessor was found by the walk above
                self.log(Record::Link {
                    bid: p,
                    next: e.next,
                });
            }
        }
        self.kill_copy(&e);
        self.allocated_logical -= u64::from(e.size_class);
        self.map.free(bid.0);
        self.log(Record::DeleteBlock { bid: bid.0 });
        self.charge_cpu(self.list_cpu());
        Ok(())
    }

    fn new_list(&mut self, pred: PredList, hints: ListHints) -> Result<Lid> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        let pred_raw = match pred {
            PredList::Start => None,
            PredList::After(l) => {
                if self.lists.get(l.0).is_none() {
                    return Err(LdError::UnknownList(l));
                }
                Some(l.0)
            }
        };
        self.ensure_room(0, 1)?;
        let lid = self
            .lists
            .alloc(pred_raw, hints)
            .expect("predecessor verified above"); // PANIC-OK: presence checked at the top of the function
        self.log(Record::NewList {
            lid,
            pred: pred_raw,
            hints,
        });
        self.charge_cpu(self.list_cpu());
        Ok(Lid(lid))
    }

    fn delete_list(&mut self, lid: Lid, pred_hint: Option<Lid>) -> Result<()> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        if self.lists.get(lid.0).is_none() {
            return Err(LdError::UnknownList(lid));
        }
        let blocks = self.walk_list(lid.0);
        self.ensure_room(0, 1)?;
        for bid in &blocks {
            let e = *self.map.get(*bid).expect("walked from live list"); // PANIC-OK: the bid was read off the chain just walked
            self.kill_copy(&e);
            self.allocated_logical -= u64::from(e.size_class);
            self.map.free(*bid);
        }
        self.lists.free(lid.0, pred_hint.map(|l| l.0));
        self.log(Record::DeleteList { lid: lid.0 });
        // One real list operation (the unlink + tuple) plus a cheap
        // pointer-chase per freed block.
        self.charge_cpu(self.list_cpu() + blocks.len() as u64 * self.walk_cpu());
        Ok(())
    }

    fn begin_aru(&mut self) -> Result<()> {
        self.check_up()?;
        if self.active_aru.is_some() {
            // The Table 1 interface is serial; concurrent units use the
            // §5.4 extension (`begin_aru_id`/`activate_aru`).
            return Err(LdError::AruAlreadyOpen);
        }
        let id = self.begin_aru_id()?;
        self.active_aru = Some(id.0);
        Ok(())
    }

    fn end_aru(&mut self) -> Result<()> {
        self.check_up()?;
        let Some(id) = self.active_aru else {
            return Err(LdError::NoAruOpen);
        };
        self.end_aru_id(AruId(id))
    }

    fn flush(&mut self, _failures: FailureSet) -> Result<()> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        if !self.dirty || self.open.is_empty() {
            self.dirty = false;
            return Ok(());
        }
        if self.open.fill_pct() >= self.config.flush_threshold_pct {
            self.seal()?;
            self.stats.flush_seals += 1;
        } else if !self.try_nvram_save()? {
            self.partial_flush()?;
        }
        // Flush is the durability point: nothing may stay in flight.
        self.drain_queue()?;
        Ok(())
    }

    fn flush_list(&mut self, lid: Lid) -> Result<()> {
        self.check_up()?;
        if self.lists.get(lid.0).is_none() {
            return Err(LdError::UnknownList(lid));
        }
        // Durability is a property of the shared log; flushing one list
        // flushes the segment (the fsync mapping the paper describes).
        self.flush(FailureSet::PowerFailure)
    }

    fn reserve(&mut self, bytes: u64) -> Result<ReservationId> {
        self.check_up()?;
        if self.free_bytes() < bytes {
            return Err(LdError::NoSpace);
        }
        let id = ReservationId(self.next_reservation);
        self.next_reservation += 1;
        self.reserved_bytes += bytes;
        self.reservations.insert(id.0, bytes);
        Ok(id)
    }

    fn cancel_reservation(&mut self, id: ReservationId) -> Result<()> {
        self.check_up()?;
        let bytes = self
            .reservations
            .remove(&id.0)
            .ok_or(LdError::UnknownReservation(id))?;
        self.reserved_bytes -= bytes;
        Ok(())
    }

    fn draw_reservation(&mut self, id: ReservationId, bytes: u64) -> Result<()> {
        self.check_up()?;
        let left = self
            .reservations
            .get_mut(&id.0)
            .ok_or(LdError::UnknownReservation(id))?;
        let take = bytes.min(*left);
        *left -= take;
        self.reserved_bytes -= take;
        if *left == 0 {
            self.reservations.remove(&id.0);
        }
        Ok(())
    }

    fn move_sublist(
        &mut self,
        src: Lid,
        first: Bid,
        last: Bid,
        dst: Lid,
        dst_pred: Pred,
    ) -> Result<()> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        if self.lists.get(src.0).is_none() {
            return Err(LdError::UnknownList(src));
        }
        if self.lists.get(dst.0).is_none() {
            return Err(LdError::UnknownList(dst));
        }
        // Collect the chain first..=last on src.
        let mut chain = Vec::new();
        let mut cur = Some(first.0);
        let limit = self.map.allocated() + 1;
        loop {
            let Some(c) = cur else {
                return Err(LdError::NotOnList {
                    bid: last,
                    lid: src,
                });
            };
            let e = self.map.get(c).ok_or(LdError::UnknownBlock(Bid(c)))?;
            if e.list != src.0 {
                return Err(LdError::NotOnList {
                    bid: Bid(c),
                    lid: src,
                });
            }
            chain.push(c);
            if c == last.0 {
                break;
            }
            if chain.len() > limit {
                return Err(LdError::NotOnList {
                    bid: last,
                    lid: src,
                });
            }
            cur = e.next;
        }
        // The destination predecessor must be on dst and outside the chain.
        if let Pred::After(p) = dst_pred {
            let on_dst = self.map.get(p.0).is_some_and(|e| e.list == dst.0);
            if !on_dst || chain.contains(&p.0) {
                return Err(LdError::NotOnList { bid: p, lid: dst });
            }
        }
        let src_pred = self.find_pred(src.0, first.0, None)?;
        self.ensure_room(0, 4)?;
        let after_chain = self.map.get(last.0).expect("walked").next; // PANIC-OK: the bid was read off the chain just walked
        // Unlink from src.
        match src_pred {
            None => {
                self.lists.get_mut(src.0).expect("verified").first = after_chain; // PANIC-OK: presence checked at the top of the function
                self.log(Record::ListHead {
                    lid: src.0,
                    first: after_chain,
                });
            }
            Some(p) => {
                self.map.get_mut(p).expect("found").next = after_chain; // PANIC-OK: the predecessor was found by the walk above
                self.log(Record::Link {
                    bid: p,
                    next: after_chain,
                });
            }
        }
        // Link into dst.
        match dst_pred {
            Pred::Start => {
                let dl = self.lists.get_mut(dst.0).expect("verified"); // PANIC-OK: presence checked at the top of the function
                let old = dl.first.replace(first.0);
                self.map.get_mut(last.0).expect("walked").next = old; // PANIC-OK: the bid was read off the chain just walked
                self.log(Record::ListHead {
                    lid: dst.0,
                    first: Some(first.0),
                });
                self.log(Record::Link {
                    bid: last.0,
                    next: old,
                });
            }
            Pred::After(p) => {
                let pe = self.map.get_mut(p.0).expect("verified"); // PANIC-OK: presence checked at the top of the function
                let old = pe.next.replace(first.0);
                self.map.get_mut(last.0).expect("walked").next = old; // PANIC-OK: the bid was read off the chain just walked
                self.log(Record::Link {
                    bid: p.0,
                    next: Some(first.0),
                });
                self.log(Record::Link {
                    bid: last.0,
                    next: old,
                });
            }
        }
        for c in &chain {
            self.map.get_mut(*c).expect("walked").list = dst.0; // PANIC-OK: the bid was read off the chain just walked
        }
        self.charge_cpu(2 * self.list_cpu() + chain.len() as u64 * self.walk_cpu());
        Ok(())
    }

    fn move_list(&mut self, lid: Lid, pred: PredList) -> Result<()> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        let pred_raw = match pred {
            PredList::Start => None,
            PredList::After(p) => Some(p.0),
        };
        if pred_raw == Some(lid.0) {
            return Err(LdError::UnknownList(lid));
        }
        self.ensure_room(0, 1)?;
        if !self.lists.move_after(lid.0, pred_raw) {
            return Err(LdError::UnknownList(lid));
        }
        self.log(Record::ListOrder {
            lid: lid.0,
            pred: pred_raw,
        });
        Ok(())
    }

    fn swap_contents(&mut self, a: Bid, b: Bid) -> Result<()> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        let ea = *self.map.get(a.0).ok_or(LdError::UnknownBlock(a))?;
        let eb = *self.map.get(b.0).ok_or(LdError::UnknownBlock(b))?;
        if ea.logical_len > eb.size_class {
            return Err(LdError::BlockTooLarge {
                got: ea.logical_len as usize,
                max: eb.size_class as usize,
            });
        }
        if eb.logical_len > ea.size_class {
            return Err(LdError::BlockTooLarge {
                got: eb.logical_len as usize,
                max: ea.size_class as usize,
            });
        }
        if a == b {
            return Ok(());
        }
        self.ensure_room(0, 1)?;
        // The seal inside ensure_room may have re-pointed open-segment
        // copies; re-read both entries before swapping.
        let ea = *self.map.get(a.0).expect("verified above"); // PANIC-OK: presence checked at the top of the function
        let eb = *self.map.get(b.0).expect("verified above"); // PANIC-OK: presence checked at the top of the function
        {
            let ma = self.map.get_mut(a.0).expect("verified above"); // PANIC-OK: presence checked at the top of the function
            ma.seg = eb.seg;
            ma.offset = eb.offset;
            ma.stored_len = eb.stored_len;
            ma.logical_len = eb.logical_len;
            ma.compressed = eb.compressed;
        }
        {
            let mb = self.map.get_mut(b.0).expect("verified above"); // PANIC-OK: presence checked at the top of the function
            mb.seg = ea.seg;
            mb.offset = ea.offset;
            mb.stored_len = ea.stored_len;
            mb.logical_len = ea.logical_len;
            mb.compressed = ea.compressed;
        }
        // Per-segment live bytes are unchanged (both copies stay live in
        // their segments), but open-segment bookkeeping must see both bids
        // so a later seal re-points whichever now lives in the buffer.
        self.open_bids.push(a.0);
        self.open_bids.push(b.0);
        self.log(Record::Swap { a: a.0, b: b.0 });
        Ok(())
    }

    fn block_at(&mut self, lid: Lid, index: u64) -> Result<Bid> {
        self.check_up()?;
        self.charge_cpu(self.config.cpu.per_command_us);
        if self.lists.get(lid.0).is_none() {
            return Err(LdError::UnknownList(lid));
        }
        let mut cur = self.lists.get(lid.0).expect("verified").first; // PANIC-OK: presence checked at the top of the function
        let mut steps = 0u64;
        let limit = self.map.allocated() as u64 + 1;
        while let Some(bid) = cur {
            if steps == index {
                self.charge_cpu(steps * self.walk_cpu());
                return Ok(Bid(bid));
            }
            steps += 1;
            if steps > limit {
                break;
            }
            cur = self.map.get(bid).and_then(|e| e.next);
        }
        self.charge_cpu(steps * self.walk_cpu());
        Err(LdError::IndexOutOfRange { lid, index })
    }

    fn list_blocks(&mut self, lid: Lid) -> Result<Vec<Bid>> {
        self.check_up()?;
        if self.lists.get(lid.0).is_none() {
            return Err(LdError::UnknownList(lid));
        }
        Ok(self.walk_list(lid.0).into_iter().map(Bid).collect())
    }

    fn block_len(&mut self, bid: Bid) -> Result<usize> {
        self.check_up()?;
        Ok(self
            .map
            .get(bid.0)
            .ok_or(LdError::UnknownBlock(bid))?
            .logical_len as usize)
    }

    fn shutdown(&mut self) -> Result<()> {
        self.check_up()?;
        // Open ARUs at shutdown are closed; their operations commit.
        for id in self.open_arus.clone() {
            self.end_aru_id(AruId(id))?;
        }
        self.seal()?;
        self.drain_queue()?;
        checkpoint::write_checkpoint(self)?;
        self.shut_down = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests;
