//! NVRAM image format for the §5.3 extension (after Baker et al. 1992).
//!
//! When a `Flush` finds the segment below the seal threshold and the device
//! has battery-backed NVRAM, the open segment's current contents (data
//! prefix + encoded summary) are saved to NVRAM instead of being written as
//! a partial segment. The image survives a crash; recovery materializes it
//! into a free segment and replays its records like any other summary.

use ld_core::wire;

use crate::records::fnv1a64;

const NVRAM_MAGIC: u32 = 0x4C44_4E56; // "LDNV"
const NVRAM_VERSION: u16 = 1;
/// Fixed image header bytes.
pub const IMAGE_HEADER_LEN: usize = 4 + 2 + 2 + 4 + 4 + 8;

/// Encodes an NVRAM image from the open segment's data prefix and its
/// encoded summary region.
pub fn encode_image(data: &[u8], summary: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(IMAGE_HEADER_LEN + summary.len() + data.len());
    out.extend_from_slice(&NVRAM_MAGIC.to_le_bytes());
    out.extend_from_slice(&NVRAM_VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(&(summary.len() as u32).to_le_bytes());
    let mut hashed = summary.to_vec();
    hashed.extend_from_slice(data);
    out.extend_from_slice(&fnv1a64(&hashed).to_le_bytes());
    out.extend_from_slice(summary);
    out.extend_from_slice(data);
    out
}

/// Bytes an image for `data_len` + `summary_len` occupies.
pub fn image_len(data_len: usize, summary_len: usize) -> usize {
    IMAGE_HEADER_LEN + summary_len + data_len
}

/// Decodes and validates an NVRAM region; returns `(summary, data)` or
/// `None` when no valid image is present.
pub fn decode_image(raw: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    if raw.len() < IMAGE_HEADER_LEN {
        return None;
    }
    let magic = wire::le_u32(raw, 0);
    let version = wire::le_u16(raw, 4);
    if magic != NVRAM_MAGIC || version != NVRAM_VERSION {
        return None;
    }
    let data_len = wire::le_u32(raw, 8) as usize;
    let summary_len = wire::le_u32(raw, 12) as usize;
    let checksum = wire::le_u64(raw, 16);
    let body = raw.get(IMAGE_HEADER_LEN..IMAGE_HEADER_LEN + summary_len + data_len)?;
    if fnv1a64(body) != checksum {
        return None;
    }
    Some((body[..summary_len].to_vec(), body[summary_len..].to_vec()))
}

/// A minimal invalidation stamp (kills the magic).
pub const INVALIDATE: [u8; 4] = [0u8; 4];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_roundtrip() {
        let data = vec![7u8; 1000];
        let summary = vec![9u8; 256];
        let img = encode_image(&data, &summary);
        assert_eq!(img.len(), image_len(data.len(), summary.len()));
        let (s, d) = decode_image(&img).expect("valid image");
        assert_eq!(s, summary);
        assert_eq!(d, data);
    }

    #[test]
    fn corruption_and_invalidation_are_detected() {
        let img = encode_image(&[1, 2, 3], &[4, 5, 6]);
        for i in (0..img.len()).filter(|&i| !(6..8).contains(&i)) {
            // Bytes 6..8 are reserved padding and carry no meaning.
            let mut c = img.clone();
            c[i] ^= 0xFF;
            assert!(decode_image(&c).is_none(), "flip at {i} accepted");
        }
        let mut dead = img.clone();
        dead[..4].copy_from_slice(&INVALIDATE);
        assert!(decode_image(&dead).is_none());
        assert!(decode_image(&[]).is_none());
    }
}
