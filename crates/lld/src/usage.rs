//! The segment usage table (paper §3: "LLD maintains in main memory a
//! segment usage table that records the number of live bytes in each
//! segment") plus free-segment bookkeeping and victim selection for the
//! cleaner.

use std::collections::BTreeSet;

use crate::cleaner::CleaningPolicy;

/// Lifecycle state of a physical segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegState {
    /// Unused; may be allocated for the next segment write.
    Free,
    /// Holds (or may hold) live data and a valid summary.
    Live,
    /// Holds the durable copy of the current *partial* segment (§3.2); it
    /// is superseded and freed when the in-memory segment seals.
    Scratch,
    /// Retired because of persistent media faults: never allocated, never
    /// a cleaning victim, never released back to the free set. Live blocks
    /// that could not be evacuated may still map into it.
    Quarantined,
}

/// Per-segment usage information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegUsage {
    /// Lifecycle state.
    pub state: SegState,
    /// Live payload bytes (stored lengths of blocks whose live copy is
    /// here).
    pub live_bytes: u64,
    /// Timestamp of the most recent write into the segment — the "age"
    /// input to the Sprite cost-benefit policy.
    pub last_write_ts: u64,
}

/// The usage table.
#[derive(Debug)]
pub struct UsageTable {
    segs: Vec<SegUsage>,
    free: BTreeSet<u32>,
}

impl UsageTable {
    /// Creates a table with all `n` segments free.
    pub fn new(n: u32) -> Self {
        Self {
            segs: vec![
                SegUsage {
                    state: SegState::Free,
                    live_bytes: 0,
                    last_write_ts: 0,
                };
                n as usize
            ],
            free: (0..n).collect(),
        }
    }

    /// Number of segments.
    pub fn len(&self) -> u32 {
        self.segs.len() as u32
    }

    /// Whether the table is empty (zero segments — never true in practice).
    // Conventional pair for `len()`; only exercised by tests.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Number of free segments.
    pub fn free_count(&self) -> u32 {
        self.free.len() as u32
    }

    /// Per-segment usage.
    pub fn get(&self, seg: u32) -> &SegUsage {
        &self.segs[seg as usize]
    }

    /// Allocates the free segment closest to `near` (reducing the seek for
    /// the upcoming segment write, the Loge-inspired heuristic §5.2
    /// suggests integrating). Returns `None` when no segment is free.
    pub fn alloc_near(&mut self, near: u32) -> Option<u32> {
        let up = self.free.range(near..).next().copied();
        let down = self.free.range(..near).next_back().copied();
        let pick = match (down, up) {
            (None, None) => return None,
            (Some(d), None) => d,
            (None, Some(u)) => u,
            (Some(d), Some(u)) => {
                if near - d <= u - near {
                    d
                } else {
                    u
                }
            }
        };
        self.free.remove(&pick);
        self.segs[pick as usize] = SegUsage {
            state: SegState::Live,
            live_bytes: 0,
            last_write_ts: 0,
        };
        Some(pick)
    }

    /// Marks a just-allocated segment as the scratch target of a partial
    /// write.
    pub fn mark_scratch(&mut self, seg: u32) {
        self.segs[seg as usize].state = SegState::Scratch;
    }

    /// Returns a segment to the free set, zeroing its usage. A quarantined
    /// segment stays quarantined: reusing failing media would silently
    /// corrupt whatever lands there next.
    pub fn release(&mut self, seg: u32) {
        if self.segs[seg as usize].state == SegState::Quarantined {
            return;
        }
        self.segs[seg as usize] = SegUsage {
            state: SegState::Free,
            live_bytes: 0,
            last_write_ts: 0,
        };
        self.free.insert(seg);
    }

    /// Retires a segment from circulation (media faults). Keeps the
    /// current live-byte accounting — blocks that could not be evacuated
    /// still map into the segment.
    pub fn quarantine(&mut self, seg: u32) {
        self.free.remove(&seg);
        self.segs[seg as usize].state = SegState::Quarantined;
    }

    /// Adds live bytes to a segment (a block copy landed there).
    pub fn add_live(&mut self, seg: u32, bytes: u64, ts: u64) {
        let s = &mut self.segs[seg as usize];
        s.live_bytes += bytes;
        s.last_write_ts = s.last_write_ts.max(ts);
    }

    /// Removes live bytes from a segment (its copy of a block died).
    ///
    /// # Panics
    ///
    /// Panics if the accounting would go negative — that is always an
    /// LLD bug, never a runtime condition.
    pub fn sub_live(&mut self, seg: u32, bytes: u64) {
        let s = &mut self.segs[seg as usize];
        assert!(
            s.live_bytes >= bytes,
            "segment {seg} live-byte accounting underflow"
        );
        s.live_bytes -= bytes;
    }

    /// Overwrites a segment's usage (recovery rebuild).
    pub fn set(&mut self, seg: u32, usage: SegUsage) {
        if usage.state == SegState::Free {
            self.free.insert(seg);
        } else {
            self.free.remove(&seg);
        }
        self.segs[seg as usize] = usage;
    }

    /// Total live bytes across all segments.
    pub fn total_live_bytes(&self) -> u64 {
        self.segs.iter().map(|s| s.live_bytes).sum()
    }

    /// The free segments, in ascending order.
    pub fn free_list(&self) -> Vec<u32> {
        self.free.iter().copied().collect()
    }

    /// Iterates over `(segment, usage)` for all segments.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &SegUsage)> {
        self.segs.iter().enumerate().map(|(i, s)| (i as u32, s))
    }

    /// Picks the best cleaning victim among live segments, excluding
    /// `exclude` (the segment currently being filled has no on-disk form
    /// and scratch segments are superseded by the in-memory segment).
    ///
    /// Greedy picks the least-utilized segment; cost-benefit picks the
    /// highest `(1 - u) * age / (1 + u)` (Rosenblum & Ousterhout; paper
    /// §3.5 notes all Sprite policies apply to LLD).
    pub fn pick_victim(
        &self,
        policy: CleaningPolicy,
        data_bytes: u64,
        now_ts: u64,
        exclude: Option<u32>,
    ) -> Option<u32> {
        let candidates = self
            .segs
            .iter()
            .enumerate()
            .filter(|(i, s)| s.state == SegState::Live && Some(*i as u32) != exclude)
            // A completely full segment yields nothing; skip it.
            .filter(|(_, s)| s.live_bytes < data_bytes);
        match policy {
            CleaningPolicy::Greedy => candidates
                .min_by_key(|(_, s)| s.live_bytes)
                .map(|(i, _)| i as u32),
            CleaningPolicy::CostBenefit => candidates
                .max_by(|(_, a), (_, b)| {
                    cost_benefit(a, data_bytes, now_ts)
                        .total_cmp(&cost_benefit(b, data_bytes, now_ts))
                })
                .map(|(i, _)| i as u32),
        }
    }

    /// Picks up to `max` cleaning victims at once, best first — the
    /// batched form of [`pick_victim`](Self::pick_victim) used when the
    /// command queue lets the cleaner prefetch several victims in one
    /// scheduler pass. Ties break toward the lower segment id so the
    /// batch is deterministic.
    pub fn pick_victims(
        &self,
        policy: CleaningPolicy,
        data_bytes: u64,
        now_ts: u64,
        max: usize,
    ) -> Vec<u32> {
        let mut cands: Vec<(u32, &SegUsage)> = self
            .segs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == SegState::Live && s.live_bytes < data_bytes)
            .map(|(i, s)| (i as u32, s))
            .collect();
        match policy {
            CleaningPolicy::Greedy => cands.sort_by_key(|(i, s)| (s.live_bytes, *i)),
            CleaningPolicy::CostBenefit => cands.sort_by(|(ia, a), (ib, b)| {
                cost_benefit(b, data_bytes, now_ts)
                    .total_cmp(&cost_benefit(a, data_bytes, now_ts))
                    .then(ia.cmp(ib))
            }),
        }
        cands.truncate(max);
        cands.into_iter().map(|(i, _)| i).collect()
    }
}

fn cost_benefit(s: &SegUsage, data_bytes: u64, now_ts: u64) -> f64 {
    let u = s.live_bytes as f64 / data_bytes as f64;
    let age = now_ts.saturating_sub(s.last_write_ts) as f64 + 1.0;
    (1.0 - u) * age / (1.0 + u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_near_prefers_closest_free_segment() {
        let mut t = UsageTable::new(10);
        for s in [3u32, 4, 6] {
            t.free.remove(&s);
            t.segs[s as usize].state = SegState::Live;
        }
        // Near 4 (taken): candidates 2 and 5, distance 2 vs 1 → 5.
        assert_eq!(t.alloc_near(4), Some(5));
        // Near 0: 0 itself is free.
        assert_eq!(t.alloc_near(0), Some(0));
        assert_eq!(t.free_count(), 5);
    }

    #[test]
    fn alloc_near_exhausts_to_none() {
        let mut t = UsageTable::new(2);
        assert!(t.alloc_near(0).is_some());
        assert!(t.alloc_near(0).is_some());
        assert_eq!(t.alloc_near(0), None);
    }

    #[test]
    fn live_byte_accounting() {
        let mut t = UsageTable::new(4);
        let s = t.alloc_near(0).unwrap();
        t.add_live(s, 1000, 5);
        t.add_live(s, 500, 9);
        assert_eq!(t.get(s).live_bytes, 1500);
        assert_eq!(t.get(s).last_write_ts, 9);
        t.sub_live(s, 1500);
        assert_eq!(t.get(s).live_bytes, 0);
        assert_eq!(t.total_live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn negative_live_bytes_panics() {
        let mut t = UsageTable::new(2);
        let s = t.alloc_near(0).unwrap();
        t.sub_live(s, 1);
    }

    #[test]
    fn greedy_picks_least_utilized() {
        let mut t = UsageTable::new(4);
        let a = t.alloc_near(0).unwrap();
        let b = t.alloc_near(3).unwrap();
        t.add_live(a, 100, 1);
        t.add_live(b, 50, 2);
        assert_eq!(
            t.pick_victim(CleaningPolicy::Greedy, 1000, 10, None),
            Some(b)
        );
        assert_eq!(
            t.pick_victim(CleaningPolicy::Greedy, 1000, 10, Some(b)),
            Some(a)
        );
    }

    #[test]
    fn cost_benefit_prefers_old_cold_segments() {
        let mut t = UsageTable::new(4);
        let a = t.alloc_near(0).unwrap();
        let b = t.alloc_near(3).unwrap();
        // Same utilization, different age: the older one wins.
        t.add_live(a, 500, 1);
        t.add_live(b, 500, 99);
        assert_eq!(
            t.pick_victim(CleaningPolicy::CostBenefit, 1000, 100, None),
            Some(a)
        );
    }

    #[test]
    fn full_segments_are_not_victims() {
        let mut t = UsageTable::new(2);
        let a = t.alloc_near(0).unwrap();
        t.add_live(a, 1000, 1);
        assert_eq!(t.pick_victim(CleaningPolicy::Greedy, 1000, 5, None), None);
    }

    #[test]
    fn quarantined_segments_leave_circulation_for_good() {
        let mut t = UsageTable::new(3);
        let a = t.alloc_near(0).unwrap();
        t.add_live(a, 700, 4);
        t.quarantine(a);
        assert_eq!(t.get(a).state, SegState::Quarantined);
        // Accounting survives (unevacuated blocks still map here).
        assert_eq!(t.get(a).live_bytes, 700);
        // Not a victim, not allocatable, and release is a no-op.
        assert_eq!(t.pick_victim(CleaningPolicy::Greedy, 1000, 9, None), None);
        t.release(a);
        assert_eq!(t.get(a).state, SegState::Quarantined);
        assert_eq!(t.free_count(), 2);
        // Quarantining a free segment removes it from the free set.
        t.quarantine(2);
        assert_eq!(t.free_count(), 1);
        assert!(!t.free_list().contains(&2));
    }

    #[test]
    fn release_returns_segment_to_free_set() {
        let mut t = UsageTable::new(2);
        let a = t.alloc_near(0).unwrap();
        t.add_live(a, 10, 1);
        t.release(a);
        assert_eq!(t.get(a).state, SegState::Free);
        assert_eq!(t.get(a).live_bytes, 0);
        assert_eq!(t.free_count(), 2);
    }
}
