//! Vendored offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the small slice of criterion 0.5 the benches use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` / `throughput`,
//! and `Bencher::{iter, iter_batched}`. Measurement is a simple adaptive
//! wall-clock loop reporting the mean time per iteration — good enough to
//! track regressions over time, with none of criterion's statistics.
//!
//! This is a *host-side* harness: it is the one place in the workspace
//! allowed to read `std::time::Instant` (simulated components take all
//! time from `simdisk`'s clock; `xtask lint` enforces that split).

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Top-level benchmark context; one per `criterion_group!` run.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 50,
            throughput: None,
        }
    }
}

/// Units of work per iteration, used to report derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup; the stub re-runs setup every
/// iteration regardless, matching `PerIteration` semantics.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for derived MB/s reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        let mut line = format!(
            "{}/{:<28} time: {:>12.3?}/iter  ({} iters)",
            self.name, id, per_iter, b.iters
        );
        if let Some(t) = self.throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match t {
                    Throughput::Bytes(n) => {
                        let mibs = n as f64 / secs / (1 << 20) as f64;
                        line.push_str(&format!("  thrpt: {mibs:>10.1} MiB/s"));
                    }
                    Throughput::Elements(n) => {
                        let eps = n as f64 / secs;
                        line.push_str(&format!("  thrpt: {eps:>10.0} elem/s"));
                    }
                }
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (separator line, matching criterion's flow).
    pub fn finish(self) {
        println!();
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

/// Minimum measured time before the adaptive loop stops growing.
const TARGET: Duration = Duration::from_millis(20);

impl Bencher {
    /// Times `f` over an adaptively chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.iters += n;
            if self.total >= TARGET || self.iters >= self.sample_size as u64 * 1000 {
                break;
            }
            n = n.saturating_mul(2);
        }
    }

    /// Times `routine` only, re-running `setup` (untimed) for every
    /// iteration. Iteration count is bounded by the group sample size
    /// because setup may dominate wall-clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if self.total >= TARGET && self.iters >= 3 {
                break;
            }
        }
    }
}

/// Declares a function running each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Bytes(4096));
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(5);
        let mut setups = 0u64;
        let mut runs = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                },
                |()| {
                    runs += 1;
                },
                BatchSize::PerIteration,
            )
        });
        g.finish();
        assert_eq!(setups, runs);
        assert!(runs >= 1);
    }
}
