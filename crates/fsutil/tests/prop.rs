//! Property tests: the buffer cache against a trivial model.
//!
//! The model is a plain map plus a "backing store" map; the invariant is
//! that (cache ∪ write-backs ∪ store) always reproduces every written
//! block, and that capacity is respected.

use fsutil::BufferCache;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    WriteDirty { addr: u8, val: u8, len: u8 },
    InsertClean { addr: u8, val: u8, len: u8 },
    Get { addr: u8 },
    Discard { addr: u8 },
    TakeDirty,
    DropAll,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u8>(), any::<u8>(), 1u8..32).prop_map(|(a, v, l)| Op::WriteDirty { addr: a % 24, val: v, len: l }),
        3 => (any::<u8>(), any::<u8>(), 1u8..32).prop_map(|(a, v, l)| Op::InsertClean { addr: a % 24, val: v, len: l }),
        5 => any::<u8>().prop_map(|a| Op::Get { addr: a % 24 }),
        1 => any::<u8>().prop_map(|a| Op::Discard { addr: a % 24 }),
        1 => Just(Op::TakeDirty),
        1 => Just(Op::DropAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_never_loses_dirty_data(ops in proptest::collection::vec(op(), 1..100)) {
        let mut cache = BufferCache::new(256); // Tiny: constant eviction.
        // What the "disk" would hold after write-backs.
        let mut store: HashMap<u32, Vec<u8>> = HashMap::new();
        // The newest written value per address (what reads must observe
        // via cache-or-store).
        let mut truth: HashMap<u32, Vec<u8>> = HashMap::new();
        // Addresses whose newest value is allowed to be missing from the
        // store (discarded while dirty).
        let mut discarded: std::collections::HashSet<u32> = std::collections::HashSet::new();

        for op in ops {
            match op {
                Op::WriteDirty { addr, val, len } => {
                    let data = vec![val; len as usize];
                    for ev in cache.insert_dirty(addr.into(), data.clone()) {
                        store.insert(ev.addr, ev.data);
                    }
                    truth.insert(addr.into(), data);
                    discarded.remove(&u32::from(addr));
                }
                Op::InsertClean { addr, val, len } => {
                    let data = vec![val; len as usize];
                    // A clean insert models a read from the store; only
                    // valid if it matches the store's content, so update
                    // both consistently.
                    for ev in cache.insert_clean(addr.into(), data.clone()) {
                        store.insert(ev.addr, ev.data);
                    }
                    store.insert(addr.into(), data.clone());
                    truth.insert(addr.into(), data);
                    discarded.remove(&u32::from(addr));
                }
                Op::Get { addr } => {
                    if let Some(data) = cache.get(addr.into()) {
                        prop_assert_eq!(
                            data,
                            truth.get(&u32::from(addr)).map(Vec::as_slice).unwrap_or(&[]),
                            "cache returned stale data for {}", addr
                        );
                    }
                }
                Op::Discard { addr } => {
                    cache.discard(addr.into());
                    discarded.insert(addr.into());
                }
                Op::TakeDirty => {
                    for ev in cache.take_dirty() {
                        store.insert(ev.addr, ev.data);
                    }
                }
                Op::DropAll => {
                    for ev in cache.drop_all() {
                        store.insert(ev.addr, ev.data);
                    }
                }
            }
            prop_assert!(cache.used_bytes() <= 256 + 32, "capacity respected");
        }

        // Flush everything; now the store must hold the newest value of
        // every non-discarded address.
        for ev in cache.drop_all() {
            store.insert(ev.addr, ev.data);
        }
        for (addr, data) in &truth {
            if discarded.contains(addr) {
                continue;
            }
            prop_assert_eq!(
                store.get(addr),
                Some(data),
                "store lost the newest value of {}", addr
            );
        }
    }
}
