//! Shared file-system substrate: buffer cache, bitmap allocator, directory
//! entry codec, and path utilities.
//!
//! These pieces are the common machinery of the three file systems in this
//! workspace (`minix-fs`, `ffs`, and the directory layer of `sprite-lfs`):
//! a write-back LRU [`BufferCache`] (the paper's 6,144 KB static MINIX
//! cache), a persistent [`Bitmap`] allocator (MINIX free-i-node/free-zone
//! maps and FFS cylinder-group maps), MINIX-style fixed-size directory
//! entries, and absolute-path parsing.

mod bitmap;
mod cache;
pub mod dirent;
pub mod path;

pub use bitmap::Bitmap;
pub use ld_core::wire;
pub use cache::{BufferCache, Evicted};
pub use path::PathError;
