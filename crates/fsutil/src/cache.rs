//! A write-back LRU buffer cache.
//!
//! Both MINIX variants in the evaluation use "a static buffer cache of
//! 6,144 Kbyte" (paper §4.2); the FFS baseline uses the same structure with
//! a different size. Keys are store addresses; values are whole block
//! images (variable-sized, supporting the small-i-node block variant).

use std::collections::HashMap;

/// Eviction victim handed back to the caller for write-back.
#[derive(Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Store address of the evicted block.
    pub addr: u32,
    /// Block image (only returned when dirty; clean evictions are silent).
    pub data: Vec<u8>,
}

#[derive(Debug)]
struct Entry {
    data: Vec<u8>,
    dirty: bool,
    last_used: u64,
}

/// The cache. Capacity is in bytes; entries are whole blocks.
#[derive(Debug)]
pub struct BufferCache {
    entries: HashMap<u32, Entry>,
    capacity_bytes: usize,
    used_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Creates a cache holding at most `capacity_bytes` of block data.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Bytes of dirty (not yet written back) data.
    pub fn dirty_bytes(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.dirty)
            .map(|e| e.data.len())
            .sum()
    }

    /// Looks up a block, refreshing recency. Records a hit or miss.
    pub fn get(&mut self, addr: u32) -> Option<&[u8]> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&addr) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(&e.data)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether a block is resident (no recency update, no stats).
    pub fn contains(&self, addr: u32) -> bool {
        self.entries.contains_key(&addr)
    }

    /// Inserts a clean block (after a read from the store). Returns dirty
    /// evictees that must be written back.
    pub fn insert_clean(&mut self, addr: u32, data: Vec<u8>) -> Vec<Evicted> {
        self.insert(addr, data, false)
    }

    /// Inserts or updates a block and marks it dirty. Returns dirty
    /// evictees that must be written back.
    pub fn insert_dirty(&mut self, addr: u32, data: Vec<u8>) -> Vec<Evicted> {
        self.insert(addr, data, true)
    }

    fn insert(&mut self, addr: u32, data: Vec<u8>, dirty: bool) -> Vec<Evicted> {
        self.tick += 1;
        if let Some(old) = self.entries.remove(&addr) {
            self.used_bytes -= old.data.len();
        }
        self.used_bytes += data.len();
        self.entries.insert(
            addr,
            Entry {
                data,
                dirty,
                last_used: self.tick,
            },
        );
        let mut evicted = Vec::new();
        while self.used_bytes > self.capacity_bytes && self.entries.len() > 1 {
            // Evict the least recently used block other than the one just
            // inserted.
            let victim = self
                .entries
                .iter()
                .filter(|(a, _)| **a != addr)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(a, _)| *a)
                .expect("len > 1"); // PANIC-OK: non-empty: the cache holds at least one entry here
            let e = self.entries.remove(&victim).expect("chosen above"); // PANIC-OK: the victim key was just drawn from this map
            self.used_bytes -= e.data.len();
            if e.dirty {
                evicted.push(Evicted {
                    addr: victim,
                    data: e.data,
                });
            }
        }
        evicted
    }

    /// Marks a resident block dirty (in-place mutation already applied via
    /// [`get_mut`](Self::get_mut)).
    pub fn mark_dirty(&mut self, addr: u32) {
        if let Some(e) = self.entries.get_mut(&addr) {
            e.dirty = true;
        }
    }

    /// Mutable access to a resident block (refreshes recency).
    pub fn get_mut(&mut self, addr: u32) -> Option<&mut Vec<u8>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&addr).map(|e| {
            e.last_used = tick;
            &mut e.data
        })
    }

    /// Removes a block without write-back (e.g. freed file blocks).
    pub fn discard(&mut self, addr: u32) {
        if let Some(e) = self.entries.remove(&addr) {
            self.used_bytes -= e.data.len();
        }
    }

    /// Takes all dirty blocks (clearing their dirty bits), in address
    /// order, for a sync. Address order gives the store its best shot at
    /// sequential write-back.
    pub fn take_dirty(&mut self) -> Vec<Evicted> {
        let mut dirty: Vec<Evicted> = self
            .entries
            .iter_mut()
            .filter(|(_, e)| e.dirty)
            .map(|(a, e)| {
                e.dirty = false;
                Evicted {
                    addr: *a,
                    data: e.data.clone(),
                }
            })
            .collect();
        dirty.sort_by_key(|e| e.addr);
        dirty
    }

    /// Drops every entry. Dirty blocks are returned for write-back first —
    /// used by the benchmarks to defeat the cache between phases.
    pub fn drop_all(&mut self) -> Vec<Evicted> {
        let dirty = self.take_dirty();
        self.entries.clear();
        self.used_bytes = 0;
        dirty
    }

    /// Resets the hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = BufferCache::new(1 << 20);
        assert!(c.get(5).is_none());
        c.insert_clean(5, vec![1, 2, 3]);
        assert_eq!(c.get(5), Some(&[1u8, 2, 3][..]));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = BufferCache::new(3000);
        c.insert_clean(1, vec![0u8; 1000]);
        c.insert_clean(2, vec![0u8; 1000]);
        c.insert_clean(3, vec![0u8; 1000]);
        // Touch 1 so 2 is the LRU.
        c.get(1);
        let ev = c.insert_clean(4, vec![0u8; 1000]);
        assert!(ev.is_empty(), "clean eviction is silent");
        assert!(c.contains(1) && !c.contains(2));
    }

    #[test]
    fn dirty_eviction_returns_block_for_writeback() {
        let mut c = BufferCache::new(2000);
        c.insert_dirty(1, vec![7u8; 1000]);
        c.insert_clean(2, vec![0u8; 1000]);
        let ev = c.insert_clean(3, vec![0u8; 1000]);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].addr, 1);
        assert_eq!(ev[0].data, vec![7u8; 1000]);
    }

    #[test]
    fn take_dirty_clears_flags_and_sorts() {
        let mut c = BufferCache::new(1 << 20);
        c.insert_dirty(9, vec![9]);
        c.insert_dirty(3, vec![3]);
        c.insert_clean(5, vec![5]);
        let d = c.take_dirty();
        assert_eq!(d.iter().map(|e| e.addr).collect::<Vec<_>>(), vec![3, 9]);
        assert!(c.take_dirty().is_empty(), "dirty bits cleared");
    }

    #[test]
    fn drop_all_returns_dirty_then_empties() {
        let mut c = BufferCache::new(1 << 20);
        c.insert_dirty(1, vec![1]);
        c.insert_clean(2, vec![2]);
        let d = c.drop_all();
        assert_eq!(d.len(), 1);
        assert!(!c.contains(1) && !c.contains(2));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn update_replaces_without_leaking_bytes() {
        let mut c = BufferCache::new(1 << 20);
        c.insert_clean(1, vec![0u8; 100]);
        c.insert_dirty(1, vec![0u8; 50]);
        assert_eq!(c.used_bytes(), 50);
    }

    #[test]
    fn get_mut_then_mark_dirty_is_written_back() {
        let mut c = BufferCache::new(1 << 20);
        c.insert_clean(1, vec![0u8; 4]);
        c.get_mut(1).unwrap()[0] = 0xFF;
        c.mark_dirty(1);
        let d = c.take_dirty();
        assert_eq!(d[0].data[0], 0xFF);
    }
}
