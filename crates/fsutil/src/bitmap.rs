//! A persistent bitmap allocator, as used by the MINIX file system for free
//! i-nodes and free zones (paper §4.1) and by the FFS baseline's cylinder
//! groups.

/// A bitmap over `len` slots; bit set = allocated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    bits: Vec<u8>,
    len: usize,
    allocated: usize,
}

impl Bitmap {
    /// Creates a bitmap with all slots free.
    pub fn new(len: usize) -> Self {
        Self {
            bits: vec![0u8; len.div_ceil(8)],
            len,
            allocated: 0,
        }
    }

    /// Rebuilds a bitmap from serialized bytes (must cover `len` bits).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short for `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(bytes.len() >= len.div_ceil(8), "bitmap bytes too short");
        let bits = bytes[..len.div_ceil(8)].to_vec();
        let mut allocated = 0;
        for i in 0..len {
            if bits[i / 8] & (1 << (i % 8)) != 0 {
                allocated += 1;
            }
        }
        Self {
            bits,
            len,
            allocated,
        }
    }

    /// Serialized form (little-endian bit order within bytes).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated slots.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Number of free slots.
    pub fn free(&self) -> usize {
        self.len - self.allocated
    }

    /// Whether slot `i` is allocated.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitmap index {i} out of range");
        self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Allocates the first free slot at or after `hint`, wrapping around —
    /// the "allocate close to the previous allocation" policy MINIX uses
    /// for zones.
    pub fn alloc_near(&mut self, hint: usize) -> Option<usize> {
        if self.allocated == self.len {
            return None;
        }
        let start = if self.len == 0 { 0 } else { hint % self.len };
        let mut i = start;
        loop {
            if !self.get(i) {
                self.set(i);
                return Some(i);
            }
            i = (i + 1) % self.len;
            if i == start {
                return None;
            }
        }
    }

    /// Allocates the first free slot from the beginning.
    pub fn alloc_first(&mut self) -> Option<usize> {
        self.alloc_near(0)
    }

    /// Marks slot `i` allocated.
    ///
    /// # Panics
    ///
    /// Panics if `i` is already allocated — double allocation is always a
    /// logic error.
    pub fn set(&mut self, i: usize) {
        assert!(!self.get(i), "slot {i} already allocated");
        self.bits[i / 8] |= 1 << (i % 8);
        self.allocated += 1;
    }

    /// Frees slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not allocated — double free is always a logic
    /// error.
    pub fn clear(&mut self, i: usize) {
        assert!(self.get(i), "slot {i} not allocated");
        self.bits[i / 8] &= !(1 << (i % 8));
        self.allocated -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_near_wraps_and_respects_hint() {
        let mut b = Bitmap::new(10);
        assert_eq!(b.alloc_near(7), Some(7));
        assert_eq!(b.alloc_near(7), Some(8));
        assert_eq!(b.alloc_near(9), Some(9));
        assert_eq!(b.alloc_near(9), Some(0), "wraps around");
        assert_eq!(b.free(), 6);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut b = Bitmap::new(3);
        for _ in 0..3 {
            assert!(b.alloc_first().is_some());
        }
        assert_eq!(b.alloc_first(), None);
        b.clear(1);
        assert_eq!(b.alloc_first(), Some(1));
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut b = Bitmap::new(100);
        for i in [0usize, 7, 8, 63, 64, 99] {
            b.set(i);
        }
        let restored = Bitmap::from_bytes(b.as_bytes(), 100);
        assert_eq!(restored, b);
        assert_eq!(restored.allocated(), 6);
        assert!(restored.get(63) && !restored.get(62));
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_alloc_panics() {
        let mut b = Bitmap::new(4);
        b.set(2);
        b.set(2);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn double_free_panics() {
        let mut b = Bitmap::new(4);
        b.clear(2);
    }
}
