//! Path parsing shared by the file systems in this workspace.

use crate::dirent::MAX_NAME;

/// Errors produced by path validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The path is empty or not absolute.
    NotAbsolute,
    /// A component is empty, `.`/`..` (unsupported in this prototype), or
    /// contains NUL.
    BadComponent(String),
    /// A component exceeds the directory-entry name limit.
    NameTooLong(String),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::NotAbsolute => write!(f, "path must be absolute"),
            PathError::BadComponent(c) => write!(f, "bad path component {c:?}"),
            PathError::NameTooLong(c) => write!(f, "name too long: {c:?}"),
        }
    }
}

impl std::error::Error for PathError {}

/// Splits an absolute path into validated components. `/` yields an empty
/// vector (the root itself).
pub fn split(path: &str) -> Result<Vec<&str>, PathError> {
    let Some(rest) = path.strip_prefix('/') else {
        return Err(PathError::NotAbsolute);
    };
    let mut out = Vec::new();
    for comp in rest.split('/') {
        if comp.is_empty() {
            continue; // Tolerate duplicate or trailing slashes.
        }
        if comp == "." || comp == ".." || comp.bytes().any(|b| b == 0) {
            return Err(PathError::BadComponent(comp.to_string()));
        }
        if comp.len() > MAX_NAME {
            return Err(PathError::NameTooLong(comp.to_string()));
        }
        out.push(comp);
    }
    Ok(out)
}

/// Splits a path into (parent components, final name).
pub fn split_parent(path: &str) -> Result<(Vec<&str>, &str), PathError> {
    let mut comps = split(path)?;
    match comps.pop() {
        Some(name) => Ok((comps, name)),
        None => Err(PathError::BadComponent("/".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_tolerates_extra_slashes() {
        assert_eq!(split("/a/b//c/").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split("/").unwrap(), Vec::<&str>::new());
    }

    #[test]
    fn rejects_relative_and_dot_components() {
        assert_eq!(split("a/b"), Err(PathError::NotAbsolute));
        assert!(matches!(split("/a/./b"), Err(PathError::BadComponent(_))));
        assert!(matches!(split("/../x"), Err(PathError::BadComponent(_))));
    }

    #[test]
    fn parent_split() {
        let (parent, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(name, "c");
        assert!(split_parent("/").is_err());
    }

    #[test]
    fn long_names_rejected() {
        let long = format!("/{}", "x".repeat(MAX_NAME + 1));
        assert!(matches!(split(&long), Err(PathError::NameTooLong(_))));
    }
}
