//! Fixed-size directory entry codec (MINIX-style).
//!
//! Each entry is 32 bytes: a 4-byte little-endian i-node number (0 = free
//! slot) followed by a NUL-padded name of up to [`MAX_NAME`] bytes.

use ld_core::wire;

/// Bytes per directory entry.
pub const DIRENT_SIZE: usize = 32;
/// Maximum file-name length.
pub const MAX_NAME: usize = DIRENT_SIZE - 4;

/// A decoded directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dirent {
    /// Target i-node number (never 0 for a live entry).
    pub ino: u32,
    /// File name.
    pub name: String,
}

/// Encodes an entry into a 32-byte slot.
///
/// # Panics
///
/// Panics if the name is empty, too long, or contains `/` or NUL — callers
/// validate names before reaching the codec.
pub fn encode(ino: u32, name: &str, slot: &mut [u8]) {
    assert!(slot.len() == DIRENT_SIZE, "slot must be one dirent");
    assert!(ino != 0, "ino 0 marks a free slot");
    assert!(
        !name.is_empty() && name.len() <= MAX_NAME,
        "invalid name length {}",
        name.len()
    );
    assert!(
        !name.bytes().any(|b| b == b'/' || b == 0),
        "name contains reserved bytes"
    );
    slot[..4].copy_from_slice(&ino.to_le_bytes());
    slot[4..].fill(0);
    slot[4..4 + name.len()].copy_from_slice(name.as_bytes());
}

/// Clears a slot (marks it free).
pub fn clear(slot: &mut [u8]) {
    slot[..4].copy_from_slice(&0u32.to_le_bytes());
}

/// Decodes a slot; `None` for a free slot or a mangled name.
pub fn decode(slot: &[u8]) -> Option<Dirent> {
    assert!(slot.len() == DIRENT_SIZE, "slot must be one dirent");
    let ino = wire::le_u32(slot, 0);
    if ino == 0 {
        return None;
    }
    let name_bytes = &slot[4..];
    let end = name_bytes.iter().position(|&b| b == 0).unwrap_or(MAX_NAME);
    let name = std::str::from_utf8(&name_bytes[..end]).ok()?.to_string();
    if name.is_empty() {
        return None;
    }
    Some(Dirent { ino, name })
}

/// Iterates the live entries in a directory block, yielding
/// `(slot_index, entry)`.
pub fn iter_block(block: &[u8]) -> impl Iterator<Item = (usize, Dirent)> + '_ {
    block
        .chunks_exact(DIRENT_SIZE)
        .enumerate()
        .filter_map(|(i, slot)| decode(slot).map(|d| (i, d)))
}

/// Finds the slot of `name` in a directory block (allocation-free; this
/// sits on the hot path of the 10,000-files-in-one-directory benchmark).
pub fn find_in_block(block: &[u8], name: &str) -> Option<(usize, u32)> {
    let needle = name.as_bytes();
    if needle.is_empty() || needle.len() > MAX_NAME {
        return None;
    }
    block
        .chunks_exact(DIRENT_SIZE)
        .enumerate()
        .find_map(|(i, slot)| {
            let ino = wire::le_u32(slot, 0);
            if ino == 0 {
                return None;
            }
            let stored = &slot[4..];
            let matches = stored[..needle.len()] == *needle
                && (needle.len() == MAX_NAME || stored[needle.len()] == 0);
            matches.then_some((i, ino))
        })
}

/// Finds the first free slot in a directory block.
pub fn free_slot(block: &[u8]) -> Option<usize> {
    block
        .chunks_exact(DIRENT_SIZE)
        .position(|slot| wire::le_u32(slot, 0) == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_entry() {
        let mut slot = [0u8; DIRENT_SIZE];
        encode(42, "hello.txt", &mut slot);
        let d = decode(&slot).unwrap();
        assert_eq!(d.ino, 42);
        assert_eq!(d.name, "hello.txt");
    }

    #[test]
    fn max_length_name_roundtrips() {
        let name = "a".repeat(MAX_NAME);
        let mut slot = [0u8; DIRENT_SIZE];
        encode(1, &name, &mut slot);
        assert_eq!(decode(&slot).unwrap().name, name);
    }

    #[test]
    fn cleared_slot_is_free() {
        let mut slot = [0u8; DIRENT_SIZE];
        encode(7, "x", &mut slot);
        clear(&mut slot);
        assert_eq!(decode(&slot), None);
        assert_eq!(free_slot(&slot), Some(0));
    }

    #[test]
    fn block_iteration_and_search() {
        let mut block = vec![0u8; 4 * DIRENT_SIZE];
        encode(1, "one", &mut block[0..DIRENT_SIZE]);
        encode(3, "three", &mut block[2 * DIRENT_SIZE..3 * DIRENT_SIZE]);
        let entries: Vec<_> = iter_block(&block).collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, 0);
        assert_eq!(entries[1].1.name, "three");
        assert_eq!(find_in_block(&block, "three"), Some((2, 3)));
        assert_eq!(find_in_block(&block, "two"), None);
        assert_eq!(free_slot(&block), Some(1));
    }

    #[test]
    #[should_panic(expected = "invalid name length")]
    fn oversized_name_panics() {
        let mut slot = [0u8; DIRENT_SIZE];
        encode(1, &"a".repeat(MAX_NAME + 1), &mut slot);
    }

    #[test]
    #[should_panic(expected = "reserved bytes")]
    fn slash_in_name_panics() {
        let mut slot = [0u8; DIRENT_SIZE];
        encode(1, "a/b", &mut slot);
    }
}
