//! Property tests: Loge vs a trivial model, and recovery-anywhere.

use loge::{Loge, LogeConfig, BLOCK};
use proptest::prelude::*;
use simdisk::MemDisk;
use std::collections::HashMap;

fn payload(seed: u8) -> Vec<u8> {
    (0..BLOCK)
        .map(|i| (i as u8).wrapping_mul(11) ^ seed)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random writes/overwrites/reads match a HashMap model exactly.
    #[test]
    fn matches_model(ops in proptest::collection::vec((any::<u16>(), any::<u8>(), any::<bool>()), 1..120)) {
        let mut loge = Loge::format(MemDisk::with_capacity(4 << 20), LogeConfig::default())
            .expect("format");
        let blocks = loge.logical_blocks();
        let mut model: HashMap<u32, u8> = HashMap::new();
        let mut buf = vec![0u8; BLOCK];
        for (bid, seed, is_write) in ops {
            let bid = u32::from(bid) % blocks;
            if is_write {
                loge.write(bid, &payload(seed)).expect("write");
                model.insert(bid, seed);
            } else {
                match model.get(&bid) {
                    Some(&s) => {
                        loge.read(bid, &mut buf).expect("read");
                        prop_assert_eq!(&buf, &payload(s));
                    }
                    None => prop_assert!(loge.read(bid, &mut buf).is_err()),
                }
            }
        }
    }

    /// Every write is individually durable: recovery after any prefix of
    /// the workload reproduces exactly the model at that point (Loge's
    /// guarantee is stronger than LLD's — "recovery up to the very last
    /// block successfully written", §5.2).
    #[test]
    fn recovery_reproduces_every_write(
        writes in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..60),
    ) {
        let mut loge = Loge::format(MemDisk::with_capacity(4 << 20), LogeConfig::default())
            .expect("format");
        let blocks = loge.logical_blocks();
        let mut model: HashMap<u32, u8> = HashMap::new();
        for (bid, seed) in writes {
            let bid = u32::from(bid) % blocks;
            loge.write(bid, &payload(seed)).expect("write");
            model.insert(bid, seed);
        }
        // Crash with zero warning; every completed write must survive.
        let disk = loge.into_disk();
        let mut rec = Loge::recover(disk, LogeConfig::default()).expect("recover");
        let mut buf = vec![0u8; BLOCK];
        for (bid, seed) in model {
            rec.read(bid, &mut buf).expect("recovered read");
            prop_assert_eq!(&buf, &payload(seed), "bid {}", bid);
        }
    }
}
