//! A Loge-style self-organizing disk controller (English & Stepanov 1992),
//! built for the paper's §5.2 comparison.
//!
//! Loge improves write performance at the *disk controller* level: it keeps
//! an indirection table from logical to physical blocks, reserves 3–5 % of
//! the physical blocks for its own use, and services each write by picking
//! the free reserved block closest to the current head position. The block
//! just superseded becomes free, so the pool stays constant. Every physical
//! block carries an out-of-band header with its logical block number and a
//! timestamp; recovery therefore **reads the whole disk** to rebuild the
//! indirection table — the property that makes LLD's summary-only recovery
//! "at least one order of magnitude faster" (§5.2).
//!
//! Modeling notes (documented substitutions):
//!
//! - Real Loge uses 520-byte sectors to hold the headers out of band. Here
//!   each 4 KB logical block occupies nine sectors: one header sector plus
//!   eight data sectors.
//! - "Closest to the current position of the disk head" is approximated by
//!   the free block nearest the last physical block written (the
//!   controller's own notion of position).

use std::collections::BTreeSet;

use ld_core::wire;
use simdisk::{BlockDev, DiskError, SECTOR_SIZE};

/// Logical/physical block payload size.
pub const BLOCK: usize = 4096;
/// Sectors per physical block: one header sector + eight data sectors.
const SECTORS_PER_BLOCK: u64 = 1 + (BLOCK / SECTOR_SIZE) as u64;

const HEADER_MAGIC: u32 = 0x4C4F_4745; // "LOGE"

/// Errors returned by [`Loge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogeError {
    /// Logical block number out of range.
    BadBlock(u32),
    /// Buffer is not exactly one block.
    BadLength(usize),
    /// The logical block has never been written.
    Unwritten(u32),
    /// Device failure.
    Io(String),
}

impl std::fmt::Display for LogeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogeError::BadBlock(b) => write!(f, "logical block {b} out of range"),
            LogeError::BadLength(l) => write!(f, "buffer of {l} bytes is not one block"),
            LogeError::Unwritten(b) => write!(f, "logical block {b} never written"),
            LogeError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for LogeError {}

fn io_err(e: DiskError) -> LogeError {
    LogeError::Io(e.to_string())
}

/// Result alias.
pub type Result<T> = std::result::Result<T, LogeError>;

/// Configuration.
#[derive(Debug, Clone)]
pub struct LogeConfig {
    /// Fraction of physical blocks reserved for the relocation pool
    /// ("Loge typically reserves 3-5% of the physical blocks").
    pub reserve_fraction: f64,
    /// Blocks to skip past the head when picking a target: by the time the
    /// command overhead has elapsed, the platter has rotated under the
    /// head, so the *timewise* closest free block is a little ahead, not
    /// adjacent. Real Loge computes this from "timely information about
    /// the current position of the disk head" (§5.2).
    pub rotational_skip_blocks: u32,
    /// How far ahead the forward search may go before a backward candidate
    /// (with its seek) becomes preferable.
    pub search_window_blocks: u32,
}

impl Default for LogeConfig {
    fn default() -> Self {
        Self {
            reserve_fraction: 0.04,
            rotational_skip_blocks: 2,
            search_window_blocks: 256,
        }
    }
}

/// Operation statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct LogeStats {
    /// Logical writes serviced.
    pub writes: u64,
    /// Logical reads serviced.
    pub reads: u64,
    /// Simulated microseconds of the last recovery scan.
    pub recovery_us: u64,
    /// Physical blocks scanned by the last recovery.
    pub recovery_blocks_scanned: u64,
}

/// The Loge controller.
pub struct Loge<D: BlockDev> {
    disk: D,
    config: LogeConfig,
    /// Logical → physical block (+1; 0 = never written).
    table: Vec<u32>,
    /// Free physical blocks (the relocation pool plus superseded blocks).
    free: BTreeSet<u32>,
    /// Exported logical block count.
    logical_blocks: u32,
    /// Total physical blocks.
    phys_blocks: u32,
    /// Timestamp counter stamped into block headers.
    ts: u64,
    /// Controller's notion of head position: last physical block touched.
    head: u32,
    stats: LogeStats,
}

impl<D: BlockDev> Loge<D> {
    /// Formats the device: all physical blocks free, empty table.
    pub fn format(mut disk: D, config: LogeConfig) -> Result<Self> {
        let phys_blocks = (disk.total_sectors() / SECTORS_PER_BLOCK).min(u32::MAX as u64) as u32;
        let reserve = ((f64::from(phys_blocks)) * config.reserve_fraction).ceil() as u32;
        let logical_blocks = phys_blocks.saturating_sub(reserve.max(1));
        // Invalidate every header so a later recovery cannot resurrect
        // stale blocks: zero the header sector of each physical block.
        let zero = vec![0u8; SECTOR_SIZE];
        for p in 0..phys_blocks {
            disk.write_sectors(u64::from(p) * SECTORS_PER_BLOCK, &zero)
                .map_err(io_err)?;
        }
        Ok(Self {
            disk,
            config,
            table: vec![0; logical_blocks as usize],
            free: (0..phys_blocks).collect(),
            logical_blocks,
            phys_blocks,
            ts: 1,
            head: 0,
            stats: LogeStats::default(),
        })
    }

    /// Recovers the indirection table by scanning every block header on
    /// the disk — the whole-disk read that LLD's recovery avoids.
    pub fn recover(mut disk: D, config: LogeConfig) -> Result<Self> {
        let t0 = disk.now_us();
        let phys_blocks = (disk.total_sectors() / SECTORS_PER_BLOCK).min(u32::MAX as u64) as u32;
        let reserve = ((f64::from(phys_blocks)) * config.reserve_fraction).ceil() as u32;
        let logical_blocks = phys_blocks.saturating_sub(reserve.max(1));

        let mut table = vec![0u32; logical_blocks as usize];
        let mut best_ts = vec![0u64; logical_blocks as usize];
        let mut used: BTreeSet<u32> = BTreeSet::new();
        let mut max_ts = 0u64;
        // One sequential sweep over the whole disk, reading every header
        // sector. (Sequential, so the cost is dominated by the transfer of
        // the full medium — exactly Loge's recovery bill.)
        let mut header = vec![0u8; SECTOR_SIZE];
        for p in 0..phys_blocks {
            disk.read_sectors(u64::from(p) * SECTORS_PER_BLOCK, &mut header)
                .map_err(io_err)?;
            let magic = wire::le_u32(&header, 0);
            if magic != HEADER_MAGIC {
                continue;
            }
            let bid = wire::le_u32(&header, 4);
            let ts = wire::le_u64(&header, 8);
            if (bid as usize) < table.len() && ts > best_ts[bid as usize] {
                if table[bid as usize] != 0 {
                    used.remove(&(table[bid as usize] - 1));
                }
                table[bid as usize] = p + 1;
                best_ts[bid as usize] = ts;
                used.insert(p);
            }
            max_ts = max_ts.max(ts);
        }
        let free = (0..phys_blocks).filter(|p| !used.contains(p)).collect();
        let elapsed = disk.now_us() - t0;
        Ok(Self {
            disk,
            config,
            table,
            free,
            logical_blocks,
            phys_blocks,
            ts: max_ts + 1,
            head: 0,
            stats: LogeStats {
                recovery_us: elapsed,
                recovery_blocks_scanned: u64::from(phys_blocks),
                ..LogeStats::default()
            },
        })
    }

    /// Exported capacity in logical blocks.
    pub fn logical_blocks(&self) -> u32 {
        self.logical_blocks
    }

    /// Total physical blocks (logical capacity plus the relocation pool).
    pub fn physical_blocks(&self) -> u32 {
        self.phys_blocks
    }

    /// Statistics.
    pub fn stats(&self) -> &LogeStats {
        &self.stats
    }

    /// The underlying device.
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// Mutable device access.
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }

    /// Consumes self, returning the device (crash simulation).
    pub fn into_disk(self) -> D {
        self.disk
    }

    fn check(&self, bid: u32, len: usize) -> Result<()> {
        if bid >= self.logical_blocks {
            return Err(LogeError::BadBlock(bid));
        }
        if len != BLOCK {
            return Err(LogeError::BadLength(len));
        }
        Ok(())
    }

    /// Picks the free physical block that is cheapest to reach from the
    /// head: preferably a little *ahead* of it (rotationally reachable
    /// without losing a revolution), otherwise the nearest one anywhere.
    fn pick_near_head(&mut self) -> u32 {
        let start = self.head.saturating_add(self.config.rotational_skip_blocks);
        let window = self.config.search_window_blocks;
        let forward = self.free.range(start..).next().copied();
        let pick = match forward {
            Some(f) if f - start <= window => f,
            _ => {
                // Fall back to the globally nearest candidate (a seek is
                // unavoidable either way).
                let up = self.free.range(self.head..).next().copied();
                let down = self.free.range(..self.head).next_back().copied();
                match (down, up) {
                    (None, None) => {
                        unreachable!("pool is never empty: writes free a block first")
                    }
                    (Some(d), None) => d,
                    (None, Some(u)) => u,
                    (Some(d), Some(u)) => {
                        if self.head - d <= u - self.head {
                            d
                        } else {
                            u
                        }
                    }
                }
            }
        };
        self.free.remove(&pick);
        pick
    }

    /// Writes a logical block to the free physical block closest to the
    /// head; the superseded physical block joins the pool.
    pub fn write(&mut self, bid: u32, data: &[u8]) -> Result<()> {
        self.check(bid, data.len())?;
        let target = self.pick_near_head();
        let ts = self.ts;
        self.ts += 1;
        let mut image = Vec::with_capacity(SECTORS_PER_BLOCK as usize * SECTOR_SIZE);
        image.extend_from_slice(&HEADER_MAGIC.to_le_bytes());
        image.extend_from_slice(&bid.to_le_bytes());
        image.extend_from_slice(&ts.to_le_bytes());
        image.resize(SECTOR_SIZE, 0);
        image.extend_from_slice(data);
        self.disk
            .write_sectors(u64::from(target) * SECTORS_PER_BLOCK, &image)
            .map_err(io_err)?;
        let old = self.table[bid as usize];
        self.table[bid as usize] = target + 1;
        if old != 0 {
            self.free.insert(old - 1);
        }
        self.head = target;
        self.stats.writes += 1;
        Ok(())
    }

    /// Reads a logical block.
    pub fn read(&mut self, bid: u32, buf: &mut [u8]) -> Result<()> {
        self.check(bid, buf.len())?;
        let phys = self.table[bid as usize];
        if phys == 0 {
            return Err(LogeError::Unwritten(bid));
        }
        let mut image = vec![0u8; SECTORS_PER_BLOCK as usize * SECTOR_SIZE];
        self.disk
            .read_sectors(u64::from(phys - 1) * SECTORS_PER_BLOCK, &mut image)
            .map_err(io_err)?;
        buf.copy_from_slice(&image[SECTOR_SIZE..]);
        self.head = phys - 1;
        self.stats.reads += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdisk::{MemDisk, SimDisk};

    fn pattern(seed: u8) -> Vec<u8> {
        (0..BLOCK).map(|i| (i as u8) ^ seed).collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut loge =
            Loge::format(MemDisk::with_capacity(8 << 20), LogeConfig::default()).unwrap();
        loge.write(7, &pattern(1)).unwrap();
        loge.write(8, &pattern(2)).unwrap();
        let mut buf = vec![0u8; BLOCK];
        loge.read(7, &mut buf).unwrap();
        assert_eq!(buf, pattern(1));
        loge.read(8, &mut buf).unwrap();
        assert_eq!(buf, pattern(2));
        assert_eq!(loge.read(9, &mut buf), Err(LogeError::Unwritten(9)));
    }

    #[test]
    fn overwrite_relocates_and_pool_is_constant() {
        let mut loge =
            Loge::format(MemDisk::with_capacity(8 << 20), LogeConfig::default()).unwrap();
        let pool0 = loge.free.len();
        loge.write(3, &pattern(1)).unwrap();
        let p1 = loge.table[3];
        loge.write(3, &pattern(2)).unwrap();
        let p2 = loge.table[3];
        assert_ne!(p1, p2, "overwrite goes to a new physical block");
        assert_eq!(loge.free.len(), pool0 - 1, "one live block, pool constant");
        let mut buf = vec![0u8; BLOCK];
        loge.read(3, &mut buf).unwrap();
        assert_eq!(buf, pattern(2));
    }

    #[test]
    fn recovery_scans_whole_disk_and_restores_table() {
        let mut loge =
            Loge::format(MemDisk::with_capacity(4 << 20), LogeConfig::default()).unwrap();
        for bid in 0..50u32 {
            loge.write(bid, &pattern(bid as u8)).unwrap();
        }
        // Overwrite some so stale headers exist.
        for bid in 0..25u32 {
            loge.write(bid, &pattern(0x80 | bid as u8)).unwrap();
        }
        let phys = loge.phys_blocks;
        let disk = loge.into_disk();
        let mut rec = Loge::recover(disk, LogeConfig::default()).unwrap();
        assert_eq!(rec.stats().recovery_blocks_scanned, u64::from(phys));
        let mut buf = vec![0u8; BLOCK];
        for bid in 0..50u32 {
            rec.read(bid, &mut buf).unwrap();
            let want = if bid < 25 {
                pattern(0x80 | bid as u8)
            } else {
                pattern(bid as u8)
            };
            assert_eq!(buf, want, "bid {bid}");
        }
        // Recovered pool allows writes immediately.
        rec.write(60, &pattern(9)).unwrap();
    }

    #[test]
    fn writes_stay_near_the_head() {
        let mut loge = Loge::format(
            SimDisk::hp_c3010_with_capacity(32 << 20),
            LogeConfig::default(),
        )
        .unwrap();
        // Scattered logical blocks; physical placement should hug the head.
        let mut max_jump = 0i64;
        let mut last = i64::from(loge.head);
        for i in 0..100u32 {
            loge.write((i * 377) % loge.logical_blocks(), &pattern(i as u8))
                .unwrap();
            let now = i64::from(loge.head);
            max_jump = max_jump.max((now - last).abs());
            last = now;
        }
        assert!(
            max_jump <= 2,
            "fresh pool: consecutive writes should land adjacent (max jump {max_jump})"
        );
    }

    #[test]
    fn random_single_block_writes_beat_update_in_place() {
        // The point of Loge: a stream of individual block writes to random
        // logical addresses costs far less than update-in-place, because
        // the controller writes wherever is closest.
        let mut loge = Loge::format(
            SimDisk::hp_c3010_with_capacity(64 << 20),
            LogeConfig::default(),
        )
        .unwrap();
        let n = 200u32;
        let blocks = loge.logical_blocks();
        // Pre-populate so overwrites dominate.
        for bid in 0..n {
            loge.write((bid * 131) % blocks, &pattern(1)).unwrap();
        }
        loge.disk_mut().reset_stats();
        let t0 = loge.disk().now_us();
        for i in 0..n {
            loge.write((i * 7919) % blocks, &pattern(2)).unwrap();
        }
        let loge_us = loge.disk().now_us() - t0;

        // Update-in-place baseline on an identical disk.
        let mut disk = SimDisk::hp_c3010_with_capacity(64 << 20);
        let t0 = disk.now_us();
        for i in 0..n {
            let sector = u64::from((i * 7919) % blocks) * 9;
            disk.write_sectors(sector, &pattern(2)[..]).unwrap();
        }
        let inplace_us = disk.now_us() - t0;
        assert!(
            loge_us * 2 < inplace_us,
            "Loge ({loge_us} us) should be well under half of update-in-place ({inplace_us} us)"
        );
    }

    #[test]
    fn bad_arguments_rejected() {
        let mut loge =
            Loge::format(MemDisk::with_capacity(4 << 20), LogeConfig::default()).unwrap();
        let blocks = loge.logical_blocks();
        assert_eq!(
            loge.write(blocks, &pattern(0)),
            Err(LogeError::BadBlock(blocks))
        );
        assert_eq!(loge.write(0, &[0u8; 100]), Err(LogeError::BadLength(100)));
    }
}
